open Import
module J = Obs.Json

let src =
  Logs.Src.create "compactphy.subsolve_cache"
    ~doc:"Content-addressed sub-solve cache"

module Log = (val Logs.src_log src : Logs.LOG)

(* Bump on any change to the key fingerprint or the on-disk entry
   layout: the version participates in the digest, so old stores are
   simply never hit again rather than misread. *)
let format_version = 1

let default_capacity = 512

(* Process-wide cache metrics (Obs.Metrics.default). *)
module M = struct
  let hits = lazy (Obs.Metrics.counter "cache.hits")
  let misses = lazy (Obs.Metrics.counter "cache.misses")
  let stores = lazy (Obs.Metrics.counter "cache.stores")
  let evictions = lazy (Obs.Metrics.counter "cache.evictions")
  let disk_evictions = lazy (Obs.Metrics.counter "cache.disk_evictions")
  let corrupt = lazy (Obs.Metrics.counter "cache.corrupt")
  let hit_rate = lazy (Obs.Metrics.gauge "cache.hit_rate")
end

(* --- keys ---

   The content address of a sub-solve: the block matrix relabelled to
   its canonical (maxmin) leaf order, digested together with every
   solver option that can change the returned tree or its search
   trajectory, plus the cache format version.  Canonicalising through
   {!Permutation.maxmin} makes the digest invariant under leaf
   relabelling — the same sub-problem reached through two different
   decompositions shares one entry — while the permutation kept on the
   key maps the stored canonical tree back to the requester's labels.

   [max_expanded] (and the whole run budget) is deliberately absent:
   only certified results are admitted, and a certified result is the
   same whatever budget the search finished under. *)

type key = {
  k_digest : string;
  k_n : int;
  k_perm : int array;  (* canonical rank -> requester's label *)
}

let digest k = k.k_digest
let size k = k.k_n

let hex x = Printf.sprintf "%h" x

let fingerprint (options : Solver.options) cm =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "subsolve-v%d" format_version);
  Buffer.add_string buf ("|lb=" ^ Run_config.lb_to_string options.Solver.lb);
  Buffer.add_string buf
    ("|relation33=" ^ Run_config.mode33_to_string options.Solver.relation33);
  Buffer.add_string buf
    ("|initial_ub="
    ^ Run_config.initial_ub_to_string options.Solver.initial_ub);
  Buffer.add_string buf
    ("|search=" ^ Run_config.search_to_string options.Solver.search);
  Buffer.add_string buf
    ("|branching=" ^ Run_config.branching_to_string options.Solver.branching);
  Buffer.add_string buf ("|gap=" ^ hex options.Solver.gap);
  Buffer.add_string buf
    ("|collect_all=" ^ string_of_bool options.Solver.collect_all);
  Buffer.add_string buf
    ("|kernel=" ^ Bnb.Kernel.kind_to_string options.Solver.kernel);
  Buffer.add_string buf (Printf.sprintf "|n=%d" (Dist_matrix.size cm));
  Dist_matrix.iter_pairs
    (fun i j d -> Buffer.add_string buf (Printf.sprintf ";%d,%d:%h" i j d))
    cm;
  Buffer.contents buf

let key ~(options : Solver.options) m =
  (* [maxmin] seats the farthest pair at positions 0 and 1 in original
     index order — a label-dependent choice even when all distances are
     distinct.  Both orientations are valid maxmin permutations of the
     same content (later positions depend only on the placed {e set}),
     so canonicalise by content: fingerprint both and keep the
     lexicographically smaller one.  With distinct pairwise distances
     that makes the digest a pure function of the matrix content; under
     genuine ties deeper in the order the digest can still depend on
     labels — sound (a different digest is only a missed share), just
     not maximally deduplicated. *)
  let orientations =
    let p = Permutation.maxmin m in
    let a = Permutation.to_array p in
    if Array.length a < 2 then [ p ]
    else begin
      let b = Array.copy a in
      let t = b.(0) in
      b.(0) <- b.(1);
      b.(1) <- t;
      [ p; Permutation.of_array b ]
    end
  in
  let fp, p =
    match
      List.map
        (fun p -> (fingerprint options (Permutation.apply m p), p))
        orientations
    with
    | [] -> assert false
    | first :: rest ->
        List.fold_left
          (fun (bf, bp) (f, p) ->
            if String.compare f bf < 0 then (f, p) else (bf, bp))
          first rest
  in
  {
    k_digest = Digest.to_hex (Digest.string fp);
    k_n = Dist_matrix.size m;
    k_perm = Permutation.to_array p;
  }

(* Relabel between the requester's leaf labels and canonical ranks.
   The stored tree lives in canonical labels, so one entry serves every
   relabelling of the same sub-problem. *)
let to_canonical k tree =
  let inv = Permutation.to_array (Permutation.inverse (Permutation.of_array k.k_perm)) in
  Utree.relabel (fun l -> inv.(l)) tree

let of_canonical k tree = Utree.relabel (fun r -> k.k_perm.(r)) tree

(* The stats envelope is replayed on hits, so a warm run's manifest is
   bit-identical to the cold run that populated the entry; copies keep
   the cached record immune to downstream aggregation. *)
let copy_stats s =
  let c = Stats.create () in
  Stats.add c s;
  c

(* --- the cache --- *)

type counters = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  disk_evictions : int;
  corrupt : int;
}

type t = {
  dir : string option;
  capacity : int;
  max_bytes : int option;  (* disk-store byte budget; None = unbounded *)
  lock : Mutex.t;
  table : (string, Executor.solved) Hashtbl.t;  (* canonical labels *)
  stamp : (string, int) Hashtbl.t;  (* LRU clock per digest *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable disk_evictions : int;
  mutable corrupt : int;
}

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counters t : counters =
  with_lock t.lock (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        stores = t.stores;
        evictions = t.evictions;
        disk_evictions = t.disk_evictions;
        corrupt = t.corrupt;
      })

let hit_rate (c : counters) =
  let total = c.hits + c.misses in
  if total = 0 then 0. else float_of_int c.hits /. float_of_int total

let counters_json (c : counters) =
  J.Obj
    [
      ("hits", J.Int c.hits);
      ("misses", J.Int c.misses);
      ("stores", J.Int c.stores);
      ("evictions", J.Int c.evictions);
      ("disk_evictions", J.Int c.disk_evictions);
      ("corrupt", J.Int c.corrupt);
      ("hit_rate", J.Float (hit_rate c));
    ]

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir ?(capacity = default_capacity) ?max_bytes () =
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Subsolve_cache.create: capacity = %d (must be >= 1)"
         capacity);
  (match max_bytes with
  | Some b when b < 1 ->
      invalid_arg
        (Printf.sprintf "Subsolve_cache.create: max_bytes = %d (must be >= 1)"
           b)
  | Some _ | None -> ());
  Option.iter mkdir_p dir;
  {
    dir;
    capacity;
    max_bytes;
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    stamp = Hashtbl.create 64;
    clock = 0;
    hits = 0;
    misses = 0;
    stores = 0;
    evictions = 0;
    disk_evictions = 0;
    corrupt = 0;
  }

let entry_path t k =
  Option.map
    (fun dir -> Filename.concat dir ("ss-" ^ k.k_digest ^ ".json"))
    t.dir

(* --- bookkeeping (call under the lock) --- *)

let touch t digest =
  t.clock <- t.clock + 1;
  Hashtbl.replace t.stamp digest t.clock

let evict_to_capacity t =
  while Hashtbl.length t.table > t.capacity do
    let victim =
      Hashtbl.fold
        (fun d s acc ->
          match acc with
          | Some (_, best) when best <= s -> acc
          | _ -> Some (d, s))
        t.stamp None
    in
    match victim with
    | None -> Hashtbl.reset t.table (* unreachable: stamp tracks table *)
    | Some (d, _) ->
        Hashtbl.remove t.table d;
        Hashtbl.remove t.stamp d;
        t.evictions <- t.evictions + 1;
        Obs.Metrics.incr (Lazy.force M.evictions)
  done

let insert_mem t digest sv =
  if not (Hashtbl.mem t.table digest) then begin
    Hashtbl.replace t.table digest sv;
    touch t digest;
    evict_to_capacity t
  end

let note_hit t =
  t.hits <- t.hits + 1;
  Obs.Metrics.incr (Lazy.force M.hits);
  Obs.Metrics.set (Lazy.force M.hit_rate)
    (float_of_int t.hits /. float_of_int (t.hits + t.misses))

let note_miss t =
  t.misses <- t.misses + 1;
  Obs.Metrics.incr (Lazy.force M.misses);
  Obs.Metrics.set (Lazy.force M.hit_rate)
    (float_of_int t.hits /. float_of_int (t.hits + t.misses))

let note_corrupt t path reason =
  t.corrupt <- t.corrupt + 1;
  Obs.Metrics.incr (Lazy.force M.corrupt);
  Log.warn (fun m -> m "rejecting cache entry %s: %s" path reason);
  (* Drop the bad blob so the fresh solve can re-store a clean one. *)
  try Sys.remove path with Sys_error _ -> ()

(* --- the on-disk store ---

   One file per entry, named by the digest.  The solved payload is the
   wire codec's hex-float JSON rendered to a string and embedded (with
   its own MD5) in a small envelope, so a truncated or bit-flipped file
   is caught either by the outer parse or by the digest check — never
   silently replayed.  Writes go to a pid-suffixed temp file first and
   rename into place, so a crash mid-write leaves no partial entry
   under the real name and concurrent processes sharing a directory
   never observe each other's half-written blobs. *)

(* LRU-by-mtime disk eviction (call under the lock).  Every admit
   re-scans the [ss-*.json] blobs and deletes oldest-mtime entries until
   the directory fits [max_bytes]; disk {e hits} refresh the blob's
   mtime ([Unix.utimes path 0. 0.] = "now"), so recently replayed
   entries survive.  The scan is O(entries) per admit, which is noise
   next to the solve that produced the entry.  Ties (filesystems with
   coarse mtimes) break by name, so eviction order is deterministic. *)
let is_entry name =
  String.length name > 8
  && String.sub name 0 3 = "ss-"
  && Filename.check_suffix name ".json"

let enforce_disk_bound t =
  match (t.dir, t.max_bytes) with
  | None, _ | _, None -> ()
  | Some dir, Some max_bytes -> (
      try
        let entries =
          Array.to_list (Sys.readdir dir)
          |> List.filter is_entry
          |> List.filter_map (fun name ->
                 let path = Filename.concat dir name in
                 match Unix.stat path with
                 | exception Unix.Unix_error _ -> None
                 | st when st.Unix.st_kind = Unix.S_REG ->
                     Some (st.Unix.st_mtime, name, path, st.Unix.st_size)
                 | _ -> None)
          |> List.sort compare (* oldest mtime first, then name *)
        in
        let total =
          List.fold_left (fun acc (_, _, _, size) -> acc + size) 0 entries
        in
        let excess = ref (total - max_bytes) in
        List.iter
          (fun (_, _, path, size) ->
            if !excess > 0 then begin
              (try Sys.remove path with Sys_error _ -> ());
              excess := !excess - size;
              t.disk_evictions <- t.disk_evictions + 1;
              Obs.Metrics.incr (Lazy.force M.disk_evictions);
              Log.debug (fun m -> m "disk eviction: %s (%d bytes)" path size)
            end)
          entries
      with Sys_error _ -> ())

let disk_store t k (sv : Executor.solved) =
  match entry_path t k with
  | None -> ()
  | Some path -> (
      try
        let payload = J.to_string (Wire.solved_to_json sv) in
        let doc =
          J.Obj
            [
              ("format", J.String "compactphy-subsolve");
              ("version", J.Int format_version);
              ("key", J.String k.k_digest);
              ("n", J.Int k.k_n);
              ("payload_md5", J.String (Digest.to_hex (Digest.string payload)));
              ("solved", J.String payload);
            ]
        in
        let tmp =
          Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())
        in
        J.write_file tmp doc;
        Sys.rename tmp path;
        enforce_disk_bound t
      with e ->
        Log.warn (fun m ->
            m "cache write failed for %s: %s" path (Printexc.to_string e)))

let disk_load t k =
  match entry_path t k with
  | None -> None
  | Some path ->
      if not (Sys.file_exists path) then None
      else begin
        let reject reason =
          note_corrupt t path reason;
          None
        in
        match J.read_file path with
        | Error e -> reject e
        | Ok doc -> (
            let str name = Option.bind (J.member name doc) J.to_string_opt in
            let int name = Option.bind (J.member name doc) J.to_int_opt in
            match
              (str "format", int "version", str "key", str "payload_md5",
               str "solved")
            with
            | Some "compactphy-subsolve", Some v, Some key', Some md5,
              Some payload
              when v = format_version && key' = k.k_digest ->
                if Digest.to_hex (Digest.string payload) <> md5 then
                  reject "payload digest mismatch"
                else begin
                  match J.of_string payload with
                  | Error e -> reject ("payload: " ^ e)
                  | Ok pj -> (
                      match Wire.solved_of_json pj with
                      | Error e -> reject ("payload: " ^ e)
                      | Ok sv ->
                          if sv.Executor.s_status <> Budget.Exact
                             || sv.Executor.s_frontier <> []
                          then reject "entry is not a certified result"
                          else begin
                            (* Refresh the blob's mtime so LRU-by-mtime
                               disk eviction spares recently hit
                               entries. *)
                            (try Unix.utimes path 0. 0.
                             with Unix.Unix_error _ -> ());
                            Some sv
                          end)
                end
            | _ -> reject "bad or mismatched envelope")
      end

(* --- lookup / store --- *)

let find t k =
  let out sv =
    Some
      {
        sv with
        Executor.s_stats = copy_stats sv.Executor.s_stats;
        s_tree = of_canonical k sv.Executor.s_tree;
        s_from_cache = true;
      }
  in
  with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.table k.k_digest with
      | Some sv ->
          touch t k.k_digest;
          note_hit t;
          out sv
      | None -> (
          match disk_load t k with
          | Some sv ->
              insert_mem t k.k_digest sv;
              note_hit t;
              out sv
          | None ->
              note_miss t;
              None))

let store t k (sv : Executor.solved) =
  (* Executor.cache_store already gates; re-check here so direct users
     of the module get the same invariant: nothing non-certified, and
     nothing replayed, is ever admitted. *)
  if sv.Executor.s_status = Budget.Exact && not sv.Executor.s_from_cache then begin
    let canonical =
      {
        sv with
        Executor.s_stats = copy_stats sv.Executor.s_stats;
        s_tree = to_canonical k sv.Executor.s_tree;
        s_frontier = [];
        s_from_cache = false;
      }
    in
    with_lock t.lock (fun () ->
        if not (Hashtbl.mem t.table k.k_digest) then begin
          insert_mem t k.k_digest canonical;
          t.stores <- t.stores + 1;
          Obs.Metrics.incr (Lazy.force M.stores);
          disk_store t k canonical
        end)
  end

(* --- process-wide wiring --- *)

let hook t =
  {
    Executor.c_lookup =
      (fun (job : Executor.job) ->
        find t (key ~options:job.Executor.j_options job.Executor.j_matrix));
    c_store =
      (fun (job : Executor.job) sv ->
        store t (key ~options:job.Executor.j_options job.Executor.j_matrix) sv);
  }

let installed_ref : t option Atomic.t = Atomic.make None

let install t =
  Atomic.set installed_ref (Some t);
  Executor.set_cache_hook (Some (hook t))

let uninstall () =
  Atomic.set installed_ref None;
  Executor.set_cache_hook None

let installed () = Atomic.get installed_ref

(* One shared instance per store directory (plus one memory-only), so
   every run — and every request of a serve daemon — warming the same
   directory also shares the in-memory LRU. *)
let instances : (string, t) Hashtbl.t = Hashtbl.create 4
let instances_lock = Mutex.create ()

let get_or_create ?dir ?capacity ?max_bytes () =
  with_lock instances_lock (fun () ->
      let k = match dir with Some d -> "dir:" ^ d | None -> "mem" in
      match Hashtbl.find_opt instances k with
      | Some t -> t
      | None ->
          let t = create ?dir ?capacity ?max_bytes () in
          Hashtbl.add instances k t;
          t)
