open Import
module J = Obs.Json

let src = Logs.Src.create "compactphy.server" ~doc:"phylo serve daemon"

module Log = (val Logs.src_log src : Logs.LOG)

(* Process-wide daemon metrics (Obs.Metrics.default), next to the
   cache.* family — both end up in /metrics. *)
module M = struct
  let queue_depth = lazy (Obs.Metrics.gauge "serve.queue_depth")
  let requests = lazy (Obs.Metrics.counter "serve.requests")
  let errors = lazy (Obs.Metrics.counter "serve.errors")
end

type t = {
  listener : Obs.Serve.t;
  pool : Domain_pool.t;
  config : Run_config.t;
  in_flight : int Atomic.t;  (* solve requests accepted, not yet answered *)
  completed : int Atomic.t;
  stopping : bool Atomic.t;
}

let addr_string t = Obs.Serve.addr_string t.listener
let port t = Obs.Serve.port t.listener
let queue_depth t = Atomic.get t.in_flight

(* --- request handling --- *)

let sync_gauge t = Obs.Metrics.set (Lazy.force M.queue_depth) (float_of_int (Atomic.get t.in_flight))

let error_json status msg =
  Obs.Metrics.incr (Lazy.force M.errors);
  ( status,
    "application/json",
    J.to_string (J.Obj [ ("error", J.String msg) ]) ^ "\n" )

let cache_provenance report =
  match Obs.Report.field report "cache" with Some j -> j | None -> J.Null

let run_json ~names ~request_id (run : Pipeline.run) =
  J.Obj
    [
      ("newick", J.String (Newick.to_string ~names run.Pipeline.tree));
      ("cost", J.Float run.Pipeline.cost);
      ("cost_hex", J.String (Printf.sprintf "%h" run.Pipeline.cost));
      ("status", Budget.status_to_json run.Pipeline.status);
      ("optimal", J.Bool run.Pipeline.optimal);
      ("n_blocks", J.Int run.Pipeline.n_blocks);
      ("elapsed_s", J.Float run.Pipeline.elapsed_s);
      ("cache", cache_provenance run.Pipeline.report);
      ("request_id", J.String request_id);
    ]

let status_json t =
  let cache =
    match Subsolve_cache.installed () with
    | Some c -> Subsolve_cache.counters_json (Subsolve_cache.counters c)
    | None -> J.Null
  in
  J.Obj
    [
      ("queue_depth", J.Int (Atomic.get t.in_flight));
      ("completed", J.Int (Atomic.get t.completed));
      ("cache", cache);
    ]

(* POST /solve: a PHYLIP matrix in the body, ?method=compact|exact in
   the query.  The solve is queued onto the persistent domain pool; the
   per-connection thread blocks on the future, so slow solves never
   stall /metrics scrapes (those run on their own connections). *)
let solve t ~request_id ~query ~body =
  match Matrix_io.of_phylip body with
  | exception Failure msg -> error_json 400 ("bad matrix: " ^ msg)
  | { Matrix_io.names; matrix } -> (
      let meth = Option.value ~default:"compact" (List.assoc_opt "method" query) in
      (* The request id becomes the solve's trace context, so any spans
         the pipeline (or a remote worker) records for this request are
         attributable to it in the merged timeline. *)
      let config = Run_config.with_run_id request_id t.config in
      let runner =
        match meth with
        | "compact" -> Some (fun () -> Pipeline.with_compact_sets ~config matrix)
        | "exact" -> Some (fun () -> Pipeline.exact ~config matrix)
        | _ -> None
      in
      match runner with
      | None -> error_json 400 (Printf.sprintf "unknown method %S (want compact|exact)" meth)
      | Some runner -> (
          Obs.Metrics.incr (Lazy.force M.requests);
          Atomic.incr t.in_flight;
          sync_gauge t;
          let finally () =
            Atomic.decr t.in_flight;
            Atomic.incr t.completed;
            sync_gauge t
          in
          match
            Fun.protect ~finally (fun () ->
                Domain_pool.await (Domain_pool.submit t.pool runner))
          with
          | run ->
              ( 200,
                "application/json",
                J.to_string (run_json ~names ~request_id run) ^ "\n" )
          | exception Domain_pool.Cancelled -> error_json 503 "server is shutting down"
          | exception Invalid_argument msg -> error_json 422 msg
          | exception exn ->
              Log.err (fun m -> m "solve failed: %s" (Printexc.to_string exn));
              error_json 500 (Printexc.to_string exn)))

let handler t ~request_id ~meth ~path ~query ~body =
  match (meth, path) with
  | "POST", "/solve" ->
      if Atomic.get t.stopping then Some (error_json 503 "server is shutting down")
      else
        (* One [request] span per solve, so a traced daemon's requests
           appear in the merged timeline next to the jobs they spawned
           (a no-op without an installed span buffer). *)
        Some
          (Obs.Span.with_span ~cat:"serve"
             ~args:[ ("request_id", J.String request_id) ]
             "request"
             (fun () -> solve t ~request_id ~query ~body))
  | _, "/solve" -> Some (405, "text/plain", "POST a PHYLIP matrix to /solve\n")
  | "GET", "/status" ->
      Some (200, "application/json", J.to_string (status_json t) ^ "\n")
  | _ -> None  (* /metrics, /healthz, /events, 404s: the builtins *)

(* --- lifecycle --- *)

let start ?(config = Run_config.default) ?recorder ?(host = "127.0.0.1") ?port
    ?socket ?pool_workers () =
  let config = Run_config.validate ~who:"Server.start" config in
  (* Installing up front (rather than on the first request) makes the
     cache counters visible in /metrics from the first scrape. *)
  (match config.Run_config.cache_dir with
  | Some dir ->
      Subsolve_cache.install
        (Subsolve_cache.get_or_create ~dir
           ?max_bytes:config.Run_config.cache_max_bytes ())
  | None -> ());
  let pool_workers =
    match pool_workers with
    | Some n ->
        if n < 1 then invalid_arg "Server.start: pool_workers must be >= 1";
        n
    | None -> max 1 config.Run_config.block_workers
  in
  let pool = Domain_pool.create ~n_workers:pool_workers in
  (* The listener's accept thread starts inside [Serve.start], so the
     handler closes over a cell filled right after — a request landing
     in that window is told to retry rather than racing construction. *)
  let cell = Atomic.make None in
  let listener =
    Obs.Serve.start ?recorder
      ~handler:(fun ~request_id ~meth ~path ~query ~body ->
        match Atomic.get cell with
        | None -> Some (503, "text/plain", "server is starting\n")
        | Some t -> handler t ~request_id ~meth ~path ~query ~body)
      ~host ?port ?socket ()
  in
  let t =
    {
      listener;
      pool;
      config;
      in_flight = Atomic.make 0;
      completed = Atomic.make 0;
      stopping = Atomic.make false;
    }
  in
  Atomic.set cell (Some t);
  sync_gauge t;
  Log.info (fun m ->
      m "phylo serve listening on %s (%d pool worker%s)" (addr_string t)
        pool_workers
        (if pool_workers = 1 then "" else "s"));
  t

let stop t =
  Atomic.set t.stopping true;
  (* Stopping the listener joins every in-flight connection thread, so
     all accepted requests have been answered — and therefore no
     further submit can race the pool shutdown. *)
  Obs.Serve.stop t.listener;
  Domain_pool.shutdown t.pool;
  sync_gauge t
