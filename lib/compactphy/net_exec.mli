open Import

(** A real TCP worker pool behind the {!Executor} interface — no
    dependencies beyond [Unix] and [Thread].

    One process runs the {!coordinator}; any number of [phylo worker
    --connect HOST:PORT] processes dial in, announce themselves with a
    [Wire.Hello], and then solve {!Executor.job}s one at a time.  The
    protocol is length-prefixed JSON ({!Wire}) with bit-exact hex-float
    payloads, so a localhost pool reproduces the sequential solver's
    cost and topology exactly.

    Fault model:
    - a worker that dies mid-job (EOF, reset, timeout) has its job
      requeued and retried on another worker;
    - a job that exhausts its retries — or a pool that never had a
      worker within [fallback_after_s] — degrades gracefully to a local
      in-process solve under the real run monitor;
    - while solving, workers stream [Wire.Heartbeat]s which the
      coordinator republishes as [Obs.Events.Heartbeat] into the
      ambient recorder, so [/healthz] staleness and [phylo top] see
      remote workers exactly like local ones;
    - when the run budget trips, in-flight jobs receive [Wire.Cancel]
      and queued jobs fall back to (immediately-stopping) local solves.

    Budget semantics over the wire: a job's [j_node_share] is enforced
    worker-side with the run budget's own polling period
    ([j_poll_every]), so a share-capped block trips at the same
    expansion count as a local {!Budget.sub} child.  Whole-run
    constraints (deadline, global cap, cancel) stay with the
    coordinator and reach in-flight workers as [Wire.Cancel] frames —
    cooperative and subject to network latency, so a deadline-tripped
    remote block may expand slightly past the instant a local one
    would have stopped.  Both processes ignore SIGPIPE on startup:
    writes to a dead peer must surface as [EPIPE] for the retry and
    fallback paths to handle. *)

val src : Logs.src
(** Log source ["compactphy.netexec"]. *)

val coordinator :
  ?job_timeout_s:float ->
  ?fallback_after_s:float ->
  ?max_retries:int ->
  addr:string ->
  monitor:Budget.monitor ->
  ?progress:Obs.Progress.t ->
  unit ->
  Executor.t * int
(** Bind [addr] (["HOST:PORT"]; port 0 for an ephemeral port), start the
    accept/housekeeping/fallback threads, and return the executor plus
    the port actually bound.  [job_timeout_s] (default: none) kills a
    worker that holds a job longer than that and requeues the job;
    [fallback_after_s] (default 10) is how long a queued job waits for
    {e any} worker before degrading to a local solve; [max_retries]
    (default 2) worker deaths per job before the same degradation.
    [shutdown] sends [Wire.Shutdown] to every worker, closes the
    listener and joins all threads.  The executor's [capacity] reports
    the number of live workers at call time (at least 1).
    @raise Invalid_argument on an unparseable [addr].
    @raise Unix.Unix_error if the bind fails. *)

val on_bound : (string -> int -> unit) -> unit
(** Register a hook called with (host, port) whenever a coordinator
    binds — the channel through which the CLI and tests learn an
    ephemeral port chosen inside the pipeline. *)

type worker_exit = [ `Shutdown | `Eof | `Died ]
(** Why {!run_worker} returned: coordinator said [Wire.Shutdown], the
    connection closed, or fault injection fired. *)

val run_worker :
  ?die_after_jobs:int ->
  ?delay_result_s:float ->
  ?heartbeat_every_s:float ->
  connect:string ->
  unit ->
  worker_exit
(** Dial [connect] and serve jobs until the coordinator goes away.
    Each job solves in its own thread under a per-job budget
    ([j_node_share] as node cap, [Wire.Cancel] as cancel flag) while
    the calling thread keeps reading frames and streaming heartbeats
    (every [heartbeat_every_s], default 1s).

    Fault injection, for tests and CI: [die_after_jobs n] makes the
    worker close its socket abruptly upon receiving its [n]-th job
    (what a SIGKILL looks like from the coordinator's side);
    [delay_result_s] delays each finished job's result frame, so a
    coordinator [job_timeout_s] can be exercised deterministically.
    @raise Invalid_argument on an unparseable [connect].
    @raise Unix.Unix_error if the connection cannot be established. *)
