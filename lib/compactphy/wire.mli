open Import

(** The TCP executor's wire protocol: length-prefixed JSON frames.

    Each frame is a 4-byte big-endian byte length followed by one JSON
    document.  Floats that must survive bit-exactly — matrix entries,
    tree heights, bounds, the gap tolerance — travel as [%h] hex-float
    literals (the checkpoint encoding), which is why a localhost pool
    reproduces the sequential solver's cost and topology exactly.

    Conversation: the worker connects and sends [Hello]; the
    coordinator answers [Welcome] (assigning a worker id) and then
    sends [Job] frames.  While solving, the worker streams [Heartbeat]s
    and watches for [Cancel]; it finishes a job with [Result] (or
    [Failure] for a solver exception) and waits for the next job.
    [Shutdown] ends the session from the coordinator's side. *)

val version : int
(** Protocol version, negotiated in [Hello]/[Welcome] (currently 4:
    jobs carry an optional trace context; heartbeats carry the worker's
    clock and a process sample; results may carry a worker-side trace
    payload). *)

val max_frame_bytes : int
(** Frames larger than this are a protocol error, not a payload. *)

type span = {
  sp_name : string;
  sp_start_ns : int64;
      (** absolute [Obs.Clock.now_ns] on the {e worker's} clock; the
          coordinator translates via its heartbeat-estimated offset *)
  sp_dur_ns : int64;
  sp_args : (string * Obs.Json.t) list;
}
(** One worker-recorded span, shipped back inside a [Result]. *)

type remote_trace = {
  rt_spans : span list;
  rt_now_ns : int64;  (** worker clock at send — one more offset sample *)
  rt_proc : Obs.Procstat.sample option;
}
(** The trace payload a worker attaches to a [Result] when the job
    carried a trace context. *)

type frame =
  | Hello of { version : int }
  | Welcome of { version : int; worker_id : int }
  | Job of Executor.job
  | Cancel of { job_id : int }
  | Shutdown
  | Heartbeat of {
      job_id : int option;
      expanded : int;
      now_ns : int64;
          (** worker clock at send; [0L] when decoding a pre-v4 frame *)
      proc : Obs.Procstat.sample option;
    }
  | Result of {
      job_id : int;
      solved : Executor.solved;
      trace : remote_trace option;
    }
  | Failure of { job_id : int; message : string }

(** {2 Codecs}

    Exposed for tests and for anything else that wants to persist jobs
    or results; all [of_json] functions are total inverses of their
    [to_json] with human-readable errors. *)

val matrix_to_json : Dist_matrix.t -> Obs.Json.t
val matrix_of_json : Obs.Json.t -> (Dist_matrix.t, string) result
val options_to_json : Solver.options -> Obs.Json.t
val options_of_json : Obs.Json.t -> (Solver.options, string) result

val stats_to_json : Stats.t -> Obs.Json.t
(** Unlike [Stats.to_json] (a manifest rendering), this carries the
    {e full} attribution cells so a remote block's forensics merge into
    the coordinator's manifest exactly as a local solve's would. *)

val stats_of_json : Obs.Json.t -> (Stats.t, string) result

val job_to_json : Executor.job -> Obs.Json.t
val job_of_json : Obs.Json.t -> (Executor.job, string) result
val solved_to_json : Executor.solved -> Obs.Json.t
val solved_of_json : Obs.Json.t -> (Executor.solved, string) result
val span_to_json : span -> Obs.Json.t
val span_of_json : Obs.Json.t -> (span, string) result
val remote_trace_to_json : remote_trace -> Obs.Json.t
val remote_trace_of_json : Obs.Json.t -> (remote_trace, string) result

val frame_to_json : frame -> Obs.Json.t
val frame_of_json : Obs.Json.t -> (frame, string) result

(** {2 Socket IO} *)

type read_error = Eof | Bad of string

val write_frame : Unix.file_descr -> frame -> unit
(** Serialise and write one frame (handles short writes).  Raises
    [Unix.Unix_error] on a dead peer — callers treat that as worker
    death. *)

val read_frame : Unix.file_descr -> (frame, read_error) result
(** Read exactly one frame.  [Eof] is a clean peer close; [Bad] is a
    malformed length, JSON or frame.  Raises [Unix.Unix_error] on
    socket errors. *)
