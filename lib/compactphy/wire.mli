open Import

(** The TCP executor's wire protocol: length-prefixed JSON frames.

    Each frame is a 4-byte big-endian byte length followed by one JSON
    document.  Floats that must survive bit-exactly — matrix entries,
    tree heights, bounds, the gap tolerance — travel as [%h] hex-float
    literals (the checkpoint encoding), which is why a localhost pool
    reproduces the sequential solver's cost and topology exactly.

    Conversation: the worker connects and sends [Hello]; the
    coordinator answers [Welcome] (assigning a worker id) and then
    sends [Job] frames.  While solving, the worker streams [Heartbeat]s
    and watches for [Cancel]; it finishes a job with [Result] (or
    [Failure] for a solver exception) and waits for the next job.
    [Shutdown] ends the session from the coordinator's side. *)

val version : int
(** Protocol version, negotiated in [Hello]/[Welcome] (currently 3:
    jobs carry the sub-solve cache opt-in, results its provenance). *)

val max_frame_bytes : int
(** Frames larger than this are a protocol error, not a payload. *)

type frame =
  | Hello of { version : int }
  | Welcome of { version : int; worker_id : int }
  | Job of Executor.job
  | Cancel of { job_id : int }
  | Shutdown
  | Heartbeat of { job_id : int option; expanded : int }
  | Result of { job_id : int; solved : Executor.solved }
  | Failure of { job_id : int; message : string }

(** {2 Codecs}

    Exposed for tests and for anything else that wants to persist jobs
    or results; all [of_json] functions are total inverses of their
    [to_json] with human-readable errors. *)

val matrix_to_json : Dist_matrix.t -> Obs.Json.t
val matrix_of_json : Obs.Json.t -> (Dist_matrix.t, string) result
val options_to_json : Solver.options -> Obs.Json.t
val options_of_json : Obs.Json.t -> (Solver.options, string) result

val stats_to_json : Stats.t -> Obs.Json.t
(** Unlike [Stats.to_json] (a manifest rendering), this carries the
    {e full} attribution cells so a remote block's forensics merge into
    the coordinator's manifest exactly as a local solve's would. *)

val stats_of_json : Obs.Json.t -> (Stats.t, string) result

val job_to_json : Executor.job -> Obs.Json.t
val job_of_json : Obs.Json.t -> (Executor.job, string) result
val solved_to_json : Executor.solved -> Obs.Json.t
val solved_of_json : Obs.Json.t -> (Executor.solved, string) result

val frame_to_json : frame -> Obs.Json.t
val frame_of_json : Obs.Json.t -> (frame, string) result

(** {2 Socket IO} *)

type read_error = Eof | Bad of string

val write_frame : Unix.file_descr -> frame -> unit
(** Serialise and write one frame (handles short writes).  Raises
    [Unix.Unix_error] on a dead peer — callers treat that as worker
    death. *)

val read_frame : Unix.file_descr -> (frame, read_error) result
(** Read exactly one frame.  [Eof] is a clean peer close; [Bad] is a
    malformed length, JSON or frame.  Raises [Unix.Unix_error] on
    socket errors. *)
