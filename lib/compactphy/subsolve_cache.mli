open Import

(** Content-addressed cache of certified block solves.

    The compact-set pipeline decomposes one run into many small
    submatrix sub-solves, and across runs — and across the requests of
    a [phylo serve] daemon — those sub-solves repeat heavily.  This
    module memoizes them the way content-addressed workflow engines
    memoize tasks: each sub-solve is keyed by a canonical digest of
    {e what is being solved} (the block matrix relabelled to its
    {!Permutation.maxmin} canonical leaf order) and {e how} (every
    search-relevant solver option: kernel, exploration strategy,
    branching, gap, bounds, 3-3 mode, [collect_all]), plus a cache
    format version.  The value is the certified optimal subtree, its
    bounds and the full stats envelope, so a warm run replays the cold
    run bit-for-bit — cost, topology and expansion accounting.

    Two layers back the mapping: a bounded in-memory LRU in front of an
    optional on-disk store (one hex-float JSON blob per entry, written
    temp-then-rename, digest-verified on load; a truncated or corrupted
    blob is rejected, counted under [cache.corrupt] and deleted, and
    the solve proceeds fresh).

    Only certified ([Budget.Exact]) results are ever admitted —
    budget-interrupted outcomes depend on where the budget tripped and
    must never be replayed as answers.  Admission and lookup gating
    live in {!Executor.cache_lookup} / {!Executor.cache_store}; this
    module implements the hook those reach through ({!install}).

    Hits, misses, stores, evictions and corrupt rejections are
    published into the process-wide {!Obs.Metrics} registry
    ([cache.hits], [cache.misses], [cache.stores], [cache.evictions],
    [cache.disk_evictions], [cache.corrupt], gauge [cache.hit_rate]), so they appear in
    [/metrics] and bench manifests; the pipeline additionally writes a
    per-run ["cache"] section into its manifest. *)

val format_version : int
(** Version of the key fingerprint and on-disk layout.  It participates
    in the digest, so bumping it orphans (never misreads) old stores. *)

val default_capacity : int
(** Default in-memory LRU capacity, in entries. *)

(** {2 Keys} *)

type key
(** The content address of one sub-solve: canonical-matrix digest plus
    the permutation mapping canonical ranks back to the requester's
    leaf labels.  Canonicalisation is by {!Permutation.maxmin} with a
    content-based choice between the two seed-pair orientations, which
    makes the digest invariant under any relabelling of a matrix whose
    pairwise distances are distinct (the generic case).  Matrices with
    exactly tied distances stay {e sound} — a relabelling may digest
    differently, which only costs a missed share, never a wrong hit.
    Sensitive to every search-relevant solver option; the search budget
    ([max_expanded]) is excluded: only certified results are stored,
    and those are budget-independent. *)

val key : options:Solver.options -> Dist_matrix.t -> key
(** Canonicalise and digest one sub-solve. *)

val digest : key -> string
(** The hex content digest (the on-disk entry name is derived from
    it). *)

val size : key -> int
(** Species count of the keyed matrix. *)

(** {2 Caches} *)

type t

val create : ?dir:string -> ?capacity:int -> ?max_bytes:int -> unit -> t
(** A fresh cache.  [dir] enables the on-disk store (the directory is
    created, parents included); without it entries live only in this
    process.  [capacity] bounds the in-memory LRU (default
    {!default_capacity}).  [max_bytes] bounds the disk store: after
    each admitted entry, least-recently-used blobs (by mtime — disk
    hits refresh it) are deleted until the directory fits, each
    deletion counted under [cache.disk_evictions].  Without it the disk
    store is unbounded, as before.
    @raise Invalid_argument if [capacity < 1] or [max_bytes < 1]. *)

val get_or_create : ?dir:string -> ?capacity:int -> ?max_bytes:int -> unit -> t
(** The process-wide shared instance for [dir] (or the shared
    memory-only instance), created on first use — so repeated runs
    against the same store directory also share the in-memory LRU.
    [capacity] and [max_bytes] only apply to the creating call. *)

val find : t -> key -> Executor.solved option
(** A certified result for this content address, relabelled to the
    requester's leaf labels, with [s_from_cache = true] and a fresh
    copy of the stored stats envelope; [None] on a miss.  Checks the
    in-memory LRU, then the disk store (promoting a disk hit into
    memory).  Thread-safe. *)

val store : t -> key -> Executor.solved -> unit
(** Admit a result (given in the requester's leaf labels; stored in
    canonical labels).  No-op unless the result is certified
    ([Budget.Exact]) and not itself a cache replay; no-op too when the
    entry already exists.  Best-effort on disk: IO failures are logged,
    never raised.  Thread-safe. *)

val entry_path : t -> key -> string option
(** Where this key's on-disk blob lives (whether or not it exists);
    [None] for a memory-only cache. *)

(** {2 Counters} *)

type counters = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;  (** in-memory LRU evictions (disk entries persist) *)
  disk_evictions : int;
      (** on-disk blobs deleted to honour the [max_bytes] bound *)
  corrupt : int;  (** on-disk entries rejected by the load-time checks *)
}

val counters : t -> counters
(** A consistent snapshot of this cache's counters. *)

val hit_rate : counters -> float
(** [hits / (hits + misses)], or [0.] before any lookup. *)

val counters_json : counters -> Obs.Json.t
(** The snapshot plus its hit rate, for manifests and server
    responses. *)

(** {2 Process-wide wiring} *)

val install : t -> unit
(** Make this cache the one {!Executor.solve_job} consults, via
    {!Executor.set_cache_hook}.  Idempotent; last wins.  Note that
    installing alone caches nothing: jobs opt in per-run through
    [Run_config.cache_dir] (the pipeline sets [j_cache] only then), so
    uncached runs stay bit-identical to a cacheless build. *)

val uninstall : unit -> unit
(** Clear the hook (and {!installed}). *)

val installed : unit -> t option
(** The currently installed cache, if any. *)
