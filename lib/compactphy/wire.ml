open Import
module J = Obs.Json

(* The TCP executor's frame layer: a 4-byte big-endian length prefix
   followed by one JSON document.  Every float that must survive the
   trip bit-exactly (matrix entries, tree heights, bounds, the gap
   tolerance) is a [%h] hex literal, the same encoding checkpoints use
   — a localhost pool is bit-identical to a sequential solve because
   nothing is ever re-rounded through decimal. *)

(* v2: job frames carry the run budget's polling period.
   v3: jobs carry the sub-solve cache opt-in; results carry cache
   provenance.
   v4: jobs carry an optional trace context; heartbeats carry the
   worker's monotonic clock and a process sample; results carry an
   optional worker-side trace payload (span batch + clock + sample) so
   the coordinator can merge worker spans into one timeline. *)
let version = 4

(* A block matrix is a few hundred species at most; 64 MiB of frame is
   already absurd, so anything larger is a protocol error, not a
   payload. *)
let max_frame_bytes = 64 * 1024 * 1024

(* One worker-recorded span, timestamped on the {e worker's} monotonic
   clock ([Obs.Clock.now_ns], absolute).  The coordinator translates
   into its own clock using the offset it estimates from heartbeats. *)
type span = {
  sp_name : string;
  sp_start_ns : int64;
  sp_dur_ns : int64;
  sp_args : (string * J.t) list;
}

(* The trace payload a worker ships back on a [Result]: the job's
   spans, the worker's clock at send time (one more offset sample for
   the coordinator), and a process sample for the [proc.worker<N>.*]
   gauges. *)
type remote_trace = {
  rt_spans : span list;
  rt_now_ns : int64;
  rt_proc : Obs.Procstat.sample option;
}

type frame =
  | Hello of { version : int }
  | Welcome of { version : int; worker_id : int }
  | Job of Executor.job
  | Cancel of { job_id : int }
  | Shutdown
  | Heartbeat of {
      job_id : int option;
      expanded : int;
      now_ns : int64;  (** worker clock at send ([0L] from old peers) *)
      proc : Obs.Procstat.sample option;
    }
  | Result of {
      job_id : int;
      solved : Executor.solved;
      trace : remote_trace option;
    }
  | Failure of { job_id : int; message : string }

(* --- field helpers (checkpoint-style result parsing) --- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let hex x = Printf.sprintf "%h" x

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name j =
  let* v = field name j in
  match J.to_int_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S must be an integer" name)

let string_field name j =
  let* v = field name j in
  match J.to_string_opt v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S must be a string" name)

let bool_field name j =
  let* v = field name j in
  match v with
  | J.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let hex_float_field name j =
  let* s = string_field name j in
  match float_of_string_opt s with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "field %S: bad float literal %S" name s)

(* Nanosecond timestamps travel as decimal strings: [J.Int] is the
   OCaml [int] (63-bit here, but not everywhere a trace might be read),
   and strings keep the framing honest about not re-rounding. *)
let int64_field name j =
  let* s = string_field name j in
  match Int64.of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "field %S: bad int64 literal %S" name s)

let list_field name j =
  let* v = field name j in
  match J.to_list_opt v with
  | Some xs -> Ok xs
  | None -> Error (Printf.sprintf "field %S must be a list" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let enum_field name of_string j =
  let* s = string_field name j in
  match of_string s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "field %S: unknown value %S" name s)

(* --- matrices --- *)

(* Entries go as [i, j, "hex"] triples so the decoder never depends on
   the matrix iteration order of the peer's build. *)
let matrix_to_json m =
  let entries = ref [] in
  Dist_matrix.iter_pairs
    (fun i j d -> entries := J.List [ J.Int i; J.Int j; J.String (hex d) ] :: !entries)
    m;
  J.Obj [ ("n", J.Int (Dist_matrix.size m)); ("entries", J.List !entries) ]

let matrix_of_json j =
  let* n = int_field "n" j in
  let* () = if n >= 1 then Ok () else Error "matrix: n must be >= 1" in
  let* entries = list_field "entries" j in
  let a = Array.make_matrix n n 0. in
  let* () =
    let rec go = function
      | [] -> Ok ()
      | J.List [ J.Int i; J.Int jj; J.String h ] :: rest -> (
          if i < 0 || i >= n || jj < 0 || jj >= n then
            Error (Printf.sprintf "matrix: entry (%d,%d) out of range" i jj)
          else
            match float_of_string_opt h with
            | None -> Error (Printf.sprintf "matrix: bad float literal %S" h)
            | Some d ->
                a.(i).(jj) <- d;
                a.(jj).(i) <- d;
                go rest)
      | _ -> Error "matrix: entries must be [i, j, \"hex\"] triples"
    in
    go entries
  in
  Ok (Dist_matrix.init n (fun i jj -> a.(i).(jj)))

(* --- solver options --- *)

let options_to_json (o : Solver.options) =
  J.Obj
    [
      ("lb", J.String (Run_config.lb_to_string o.Solver.lb));
      ("relation33", J.String (Run_config.mode33_to_string o.Solver.relation33));
      ( "initial_ub",
        J.String (Run_config.initial_ub_to_string o.Solver.initial_ub) );
      ( "max_expanded",
        match o.Solver.max_expanded with
        | Some cap -> J.Int cap
        | None -> J.Null );
      ("search", J.String (Run_config.search_to_string o.Solver.search));
      ("branching", J.String (Run_config.branching_to_string o.Solver.branching));
      ("gap", J.String (hex o.Solver.gap));
      ("collect_all", J.Bool o.Solver.collect_all);
      ("kernel", J.String (Bnb.Kernel.kind_to_string o.Solver.kernel));
    ]

let options_of_json j =
  let* lb = enum_field "lb" Run_config.lb_of_string j in
  let* relation33 = enum_field "relation33" Run_config.mode33_of_string j in
  let* initial_ub = enum_field "initial_ub" Run_config.initial_ub_of_string j in
  let* max_expanded =
    match J.member "max_expanded" j with
    | Some J.Null | None -> Ok None
    | Some v -> (
        match J.to_int_opt v with
        | Some cap -> Ok (Some cap)
        | None -> Error "field \"max_expanded\" must be an integer or null")
  in
  let* search = enum_field "search" Run_config.search_of_string j in
  let* branching = enum_field "branching" Run_config.branching_of_string j in
  let* gap = hex_float_field "gap" j in
  let* collect_all = bool_field "collect_all" j in
  let* kernel = enum_field "kernel" Bnb.Kernel.kind_of_string j in
  Ok
    {
      Solver.lb;
      relation33;
      initial_ub;
      max_expanded;
      search;
      branching;
      gap;
      collect_all;
      kernel;
    }

(* --- stats (counters + full attribution cells) --- *)

let stats_to_json (s : Stats.t) =
  J.Obj
    [
      ("expanded", J.Int s.Stats.expanded);
      ("generated", J.Int s.Stats.generated);
      ("pruned", J.Int s.Stats.pruned);
      ("pruned_33", J.Int s.Stats.pruned_33);
      ("ub_updates", J.Int s.Stats.ub_updates);
      ("max_open", J.Int s.Stats.max_open);
      ("attribution", Obs.Attribution.cells_to_json s.Stats.att);
    ]

let stats_of_json j =
  let* expanded = int_field "expanded" j in
  let* generated = int_field "generated" j in
  let* pruned = int_field "pruned" j in
  let* pruned_33 = int_field "pruned_33" j in
  let* ub_updates = int_field "ub_updates" j in
  let* max_open = int_field "max_open" j in
  let* att_j = field "attribution" j in
  let* att = Obs.Attribution.cells_of_json att_j in
  Ok
    { Stats.expanded; generated; pruned; pruned_33; ub_updates; max_open; att }

(* --- trees, resume, status --- *)

let tree_to_json = Checkpoint.tree_to_json
let tree_of_json = Checkpoint.tree_of_json

let resume_to_json = function
  | None -> J.Null
  | Some (`Solved t) -> J.Obj [ ("solved", tree_to_json t) ]
  | Some (`Restart (r : Solver.resume)) ->
      J.Obj
        [
          ( "frontier",
            J.List
              (List.map
                 (fun (k, t) ->
                   J.Obj [ ("k", J.Int k); ("tree", tree_to_json t) ])
                 r.Solver.r_frontier) );
          ("ub", J.String (hex r.Solver.r_ub));
          ( "incumbent",
            match r.Solver.r_incumbent with
            | Some t -> tree_to_json t
            | None -> J.Null );
        ]

let resume_of_json = function
  | J.Null -> Ok None
  | j -> (
      match J.member "solved" j with
      | Some t ->
          let* t = tree_of_json t in
          Ok (Some (`Solved t))
      | None ->
          let* fr = list_field "frontier" j in
          let* r_frontier =
            map_result
              (fun e ->
                let* k = int_field "k" e in
                let* t = field "tree" e in
                let* t = tree_of_json t in
                Ok (k, t))
              fr
          in
          let* r_ub = hex_float_field "ub" j in
          let* r_incumbent =
            match J.member "incumbent" j with
            | Some J.Null | None -> Ok None
            | Some t ->
                let* t = tree_of_json t in
                Ok (Some t)
          in
          Ok (Some (`Restart { Solver.r_frontier; r_ub; r_incumbent })))

let status_of_json j =
  let* s = string_field "status" j in
  match Budget.status_of_string s with
  | Some st -> Ok st
  | None -> Error (Printf.sprintf "unknown status %S" s)

(* --- trace payloads --- *)

let span_to_json s =
  J.Obj
    [
      ("name", J.String s.sp_name);
      ("start_ns", J.String (Int64.to_string s.sp_start_ns));
      ("dur_ns", J.String (Int64.to_string s.sp_dur_ns));
      ("args", J.Obj s.sp_args);
    ]

let span_of_json j =
  let* sp_name = string_field "name" j in
  let* sp_start_ns = int64_field "start_ns" j in
  let* sp_dur_ns = int64_field "dur_ns" j in
  let sp_args =
    match J.member "args" j with Some (J.Obj kvs) -> kvs | _ -> []
  in
  Ok { sp_name; sp_start_ns; sp_dur_ns; sp_args }

let remote_trace_to_json t =
  J.Obj
    ([
       ("spans", J.List (List.map span_to_json t.rt_spans));
       ("now_ns", J.String (Int64.to_string t.rt_now_ns));
     ]
    @
    match t.rt_proc with
    | Some p -> [ ("proc", Obs.Procstat.to_json p) ]
    | None -> [])

let remote_trace_of_json j =
  let* spans = list_field "spans" j in
  let* rt_spans = map_result span_of_json spans in
  let* rt_now_ns = int64_field "now_ns" j in
  let* rt_proc =
    match J.member "proc" j with
    | Some J.Null | None -> Ok None
    | Some p ->
        let* p = Obs.Procstat.of_json p in
        Ok (Some p)
  in
  Ok { rt_spans; rt_now_ns; rt_proc }

(* --- jobs and results --- *)

let job_to_json (job : Executor.job) =
  J.Obj
    ([
      ("id", J.Int job.Executor.j_id);
      ("size", J.Int job.Executor.j_size);
      ("matrix", matrix_to_json job.Executor.j_matrix);
      ("options", options_to_json job.Executor.j_options);
      ("workers", J.Int job.Executor.j_workers);
      ( "node_share",
        match job.Executor.j_node_share with
        | Some s -> J.Int s
        | None -> J.Null );
      ("poll_every", J.Int job.Executor.j_poll_every);
      ("resume", resume_to_json job.Executor.j_resume);
      ("cache", J.Bool job.Executor.j_cache);
    ]
    (* The trace context only appears when the run minted one, so
       telemetry-off job frames stay byte-identical to v3's. *)
    @
    match job.Executor.j_trace with
    | Some tr -> [ ("trace", J.String tr) ]
    | None -> [])

let job_of_json j =
  let* j_id = int_field "id" j in
  let* j_size = int_field "size" j in
  let* mj = field "matrix" j in
  let* j_matrix = matrix_of_json mj in
  let* oj = field "options" j in
  let* j_options = options_of_json oj in
  let* j_workers = int_field "workers" j in
  let* j_node_share =
    match J.member "node_share" j with
    | Some J.Null | None -> Ok None
    | Some v -> (
        match J.to_int_opt v with
        | Some s -> Ok (Some s)
        | None -> Error "field \"node_share\" must be an integer or null")
  in
  let* j_poll_every = int_field "poll_every" j in
  let* rj = field "resume" j in
  let* j_resume = resume_of_json rj in
  let* j_cache = bool_field "cache" j in
  let* j_trace =
    match J.member "trace" j with
    | Some J.Null | None -> Ok None
    | Some v -> (
        match J.to_string_opt v with
        | Some tr -> Ok (Some tr)
        | None -> Error "field \"trace\" must be a string or null")
  in
  Ok
    {
      Executor.j_id;
      j_size;
      j_matrix;
      j_options;
      j_workers;
      j_node_share;
      j_poll_every;
      j_resume;
      j_cache;
      j_trace;
    }

let solved_to_json (s : Executor.solved) =
  J.Obj
    [
      ("stats", stats_to_json s.Executor.s_stats);
      ("tree", tree_to_json s.Executor.s_tree);
      ("status", Budget.status_to_json s.Executor.s_status);
      ("lb", J.String (hex s.Executor.s_lb));
      ("gap", J.String (hex s.Executor.s_gap));
      ("optimal", J.Bool s.Executor.s_optimal);
      ("frontier", J.List (List.map tree_to_json s.Executor.s_frontier));
      ("from_cache", J.Bool s.Executor.s_from_cache);
    ]

let solved_of_json j =
  let* sj = field "stats" j in
  let* s_stats = stats_of_json sj in
  let* tj = field "tree" j in
  let* s_tree = tree_of_json tj in
  let* s_status = status_of_json j in
  let* s_lb = hex_float_field "lb" j in
  let* s_gap = hex_float_field "gap" j in
  let* s_optimal = bool_field "optimal" j in
  let* fr = list_field "frontier" j in
  let* s_frontier = map_result tree_of_json fr in
  let* s_from_cache = bool_field "from_cache" j in
  Ok
    {
      Executor.s_stats;
      s_tree;
      s_status;
      s_lb;
      s_gap;
      s_optimal;
      s_frontier;
      s_from_cache;
    }

(* --- frames --- *)

let frame_to_json = function
  | Hello { version } ->
      J.Obj [ ("type", J.String "hello"); ("version", J.Int version) ]
  | Welcome { version; worker_id } ->
      J.Obj
        [
          ("type", J.String "welcome");
          ("version", J.Int version);
          ("worker_id", J.Int worker_id);
        ]
  | Job job -> J.Obj [ ("type", J.String "job"); ("job", job_to_json job) ]
  | Cancel { job_id } ->
      J.Obj [ ("type", J.String "cancel"); ("job", J.Int job_id) ]
  | Shutdown -> J.Obj [ ("type", J.String "shutdown") ]
  | Heartbeat { job_id; expanded; now_ns; proc } ->
      J.Obj
        ([
           ("type", J.String "heartbeat");
           ("job", match job_id with Some i -> J.Int i | None -> J.Null);
           ("expanded", J.Int expanded);
           ("now_ns", J.String (Int64.to_string now_ns));
         ]
        @
        match proc with
        | Some p -> [ ("proc", Obs.Procstat.to_json p) ]
        | None -> [])
  | Result { job_id; solved; trace } ->
      J.Obj
        ([
           ("type", J.String "result");
           ("job", J.Int job_id);
           ("solved", solved_to_json solved);
         ]
        @
        match trace with
        | Some t -> [ ("trace", remote_trace_to_json t) ]
        | None -> [])
  | Failure { job_id; message } ->
      J.Obj
        [
          ("type", J.String "failure");
          ("job", J.Int job_id);
          ("message", J.String message);
        ]

let frame_of_json j =
  let* ty = string_field "type" j in
  match ty with
  | "hello" ->
      let* version = int_field "version" j in
      Ok (Hello { version })
  | "welcome" ->
      let* version = int_field "version" j in
      let* worker_id = int_field "worker_id" j in
      Ok (Welcome { version; worker_id })
  | "job" ->
      let* jj = field "job" j in
      let* job = job_of_json jj in
      Ok (Job job)
  | "cancel" ->
      let* job_id = int_field "job" j in
      Ok (Cancel { job_id })
  | "shutdown" -> Ok Shutdown
  | "heartbeat" ->
      let* job_id =
        match J.member "job" j with
        | Some J.Null | None -> Ok None
        | Some v -> (
            match J.to_int_opt v with
            | Some i -> Ok (Some i)
            | None -> Error "heartbeat: field \"job\" must be int or null")
      in
      let* expanded = int_field "expanded" j in
      let* now_ns =
        match J.member "now_ns" j with
        | None -> Ok 0L
        | Some _ -> int64_field "now_ns" j
      in
      let* proc =
        match J.member "proc" j with
        | Some J.Null | None -> Ok None
        | Some p ->
            let* p = Obs.Procstat.of_json p in
            Ok (Some p)
      in
      Ok (Heartbeat { job_id; expanded; now_ns; proc })
  | "result" ->
      let* job_id = int_field "job" j in
      let* sj = field "solved" j in
      let* solved = solved_of_json sj in
      let* trace =
        match J.member "trace" j with
        | Some J.Null | None -> Ok None
        | Some t ->
            let* t = remote_trace_of_json t in
            Ok (Some t)
      in
      Ok (Result { job_id; solved; trace })
  | "failure" ->
      let* job_id = int_field "job" j in
      let* message = string_field "message" j in
      Ok (Failure { job_id; message })
  | _ -> Error (Printf.sprintf "unknown frame type %S" ty)

(* --- socket IO --- *)

type read_error = Eof | Bad of string

let write_all fd b off len =
  let rec go off len =
    if len > 0 then begin
      match Unix.write fd b off len with
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
    end
  in
  go off len

let write_frame fd frame =
  let payload = J.to_string (frame_to_json frame) in
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b 4 n;
  write_all fd b 0 (4 + n)

let read_exact fd b off len =
  let rec go off len =
    if len = 0 then Ok ()
    else
      match Unix.read fd b off len with
      | 0 -> Error Eof
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
  in
  go off len

let read_frame fd =
  let hdr = Bytes.create 4 in
  match read_exact fd hdr 0 4 with
  | Error _ as e -> e
  | Ok () -> (
      let len =
        (Bytes.get_uint8 hdr 0 lsl 24)
        lor (Bytes.get_uint8 hdr 1 lsl 16)
        lor (Bytes.get_uint8 hdr 2 lsl 8)
        lor Bytes.get_uint8 hdr 3
      in
      if len <= 0 || len > max_frame_bytes then
        Error (Bad (Printf.sprintf "bad frame length %d" len))
      else
        let b = Bytes.create len in
        match read_exact fd b 0 len with
        | Error _ as e -> e
        | Ok () -> (
            match J.of_string (Bytes.unsafe_to_string b) with
            | Error e -> Error (Bad (Printf.sprintf "bad frame JSON: %s" e))
            | Ok j -> (
                match frame_of_json j with
                | Error e -> Error (Bad e)
                | Ok f -> Ok f)))
