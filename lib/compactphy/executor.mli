open Import

(** One interface for running block solves, wherever they execute.

    The compact-set pipeline decomposes a matrix into independent block
    solves and needs them executed — on this machine's domains, on the
    discrete-event cluster simulator, or on a real TCP worker pool.
    An {!t} abstracts the "where": the pipeline submits {!job}s (pure
    data: matrix, solver options, node share, resume state) and awaits
    {!outcome}s (pure data: stats, tree, certified bounds, frontier in
    the block's own labels), so budgets, checkpoints and manifests
    compose identically over every backend.

    Implementations:
    - {!local} — the calling domain ([capacity = 1]) or a
      [Parbnb.Domain_pool]; the default, bit-identical to the historical
      in-process pipeline.
    - {!sim} — the cluster simulator, registered by [Clustersim.Sim_exec]
      (which depends on this library, so the wiring is a factory hook).
    - [Net_exec.coordinator] — a real TCP worker pool (see {!Net_exec}).

    Every implementation emits [Block_start]/[Block_finish] events into
    the ambient {!Obs.Recorder}, so [phylo top], [/metrics] and the
    flight recorder see the same story regardless of backend. *)

type kind = Local | Sim | Tcp
(** Which backend a {!Run_config} selects. *)

val kind_to_string : kind -> string
(** ["local"], ["sim"] or ["tcp"] — the CLI / manifest spelling. *)

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}; [None] on unknown names. *)

val parse_addr : string -> (string * int, string) result
(** Parse a TCP pool address: ["HOST:PORT"], [":PORT"] or a bare port
    (host defaults to 127.0.0.1).  Port 0 is allowed and means "bind an
    ephemeral port" on the coordinator side. *)

type job = {
  j_id : int;  (** deterministic block id — everything downstream keys on it *)
  j_size : int;  (** species count of the block (for events/metrics) *)
  j_matrix : Dist_matrix.t;  (** the block-local matrix to solve *)
  j_options : Solver.options;
  j_workers : int;  (** intra-solve domains (where the backend supports them) *)
  j_node_share : int option;
      (** this block's share of a whole-run node cap; enforced as a
          {!Budget.sub} child monitor wherever the job runs *)
  j_poll_every : int;
      (** the run budget's polling period, shipped with the job so a
          remote worker's monitor trips a [j_node_share] at exactly the
          expansion count a local {!Budget.sub} child would *)
  j_resume : [ `Solved of Utree.t | `Restart of Solver.resume ] option;
      (** checkpoint state: a finished block skips the solve, an
          interrupted one continues from its frontier *)
  j_cache : bool;
      (** consult the installed sub-solve cache before solving and offer
          the certified result back afterwards (see {!Subsolve_cache});
          resumed jobs never touch the cache regardless *)
  j_trace : string option;
      (** trace context — the run's [run_id] (or a serve request's
          [request_id]).  Stamped on the job's spans, shipped over the
          wire, and echoed back by remote workers so their spans can be
          merged into the coordinator's trace.  [None] when telemetry is
          off: jobs then serialise and behave exactly as before. *)
}

type solved = {
  s_stats : Stats.t;
  s_tree : Utree.t;  (** best tree, in the block matrix's own labels *)
  s_status : Budget.status;
  s_lb : float;  (** certified lower bound on the block optimum *)
  s_gap : float;  (** certified relative gap *)
  s_optimal : bool;
  s_frontier : Utree.t list;
      (** open partial trees in the block matrix's own labels (the
          checkpoint representation) — empty for a completed search *)
  s_from_cache : bool;
      (** provenance: this result was replayed from the sub-solve cache
          (stats included) rather than searched for *)
}

type outcome = {
  o_job : int;  (** the job's [j_id] *)
  o_solved : solved;
  o_queue_wait_s : float;  (** executor creation -> job started *)
  o_solve_s : float;
}

type future = { await : unit -> outcome }
(** [await] blocks until the job finished (possibly re-raising the
    job's exception); safe to call once per future. *)

type t = {
  name : string;  (** backend name, for logs and manifests *)
  capacity : unit -> int;
      (** jobs the backend can run concurrently {e right now} — fixed
          for the in-process backends, the number of live workers (at
          least 1) for the TCP pool *)
  submit : job -> future;
  cancel : unit -> unit;
      (** best-effort cooperative stop of everything not yet running;
          in-flight solves stop via their budget monitors *)
  shutdown : unit -> unit;
      (** release the backend's resources (join domains, close
          sockets); call after every future was awaited.  Idempotent. *)
}

val src : Logs.src
(** Log source ["compactphy.executor"]. *)

(** {2 Sub-solve cache hook}

    The content-addressed cache ({!Subsolve_cache}) lives above this
    module, so the solve core reaches it through an installed hook —
    the same late-binding wiring as the sim backend.  Backends that do
    not run {!solve_job} (the simulator) call {!cache_lookup} /
    {!cache_store} around their own solve so every backend honours a
    job's [j_cache] opt-in identically. *)

type cache_hook = {
  c_lookup : job -> solved option;
      (** a certified result for the job's (matrix, options) content
          address, relabelled to the job matrix's own labels *)
  c_store : job -> solved -> unit;
      (** offer a result; only called for certified, non-replayed
          results of cache-opted jobs *)
}

val set_cache_hook : cache_hook option -> unit
(** Install (or clear) the process-wide cache hook; last wins. *)

val cache_lookup : job -> solved option
(** Consult the installed hook — [None] (a miss) unless the job opted
    in ([j_cache]), carries no resume state, spans at least two species
    and the hook has a certified entry.  Hook failures are logged and
    reported as misses. *)

val cache_store : job -> solved -> unit
(** Offer a result to the installed hook.  No-op unless the job is
    cacheable (as in {!cache_lookup}), the result is certified
    ([Budget.Exact]) and not itself a cache replay — budget-interrupted
    outcomes are never admitted. *)

(** {2 Shared execution core} *)

val solve_job :
  monitor:Budget.monitor -> ?progress:Obs.Progress.t -> job -> solved
(** Solve one job in the calling domain under [monitor] — the one
    search both the in-process backends and a remote worker run.  No
    events, no timing: callers wrap it.  Consults the installed
    sub-solve cache first ({!cache_lookup}) and offers the certified
    result back afterwards ({!cache_store}). *)

val job_monitor : monitor:Budget.monitor -> job -> Budget.monitor
(** The monitor a job solves under: [monitor] itself, or a
    {!Budget.sub} child enforcing [j_node_share]. *)

val run_job :
  monitor:Budget.monitor ->
  ?progress:Obs.Progress.t ->
  t0:Obs.Clock.counter ->
  job ->
  outcome
(** {!solve_job} plus the executor envelope: node-share sub-monitor,
    [Block_start]/[Block_finish] events, queue-wait (measured from
    [t0]) and solve timing. *)

(** {2 Backends} *)

val local :
  capacity:int -> monitor:Budget.monitor -> ?progress:Obs.Progress.t ->
  unit -> t
(** In-process executor.  [capacity = 1] runs each job in the calling
    domain at submission time (the sequential schedule, no spawns);
    larger capacities run jobs over a [Parbnb.Domain_pool] in
    submission order. *)

val sim : monitor:Budget.monitor -> workers:int -> t
(** The cluster-simulator backend.
    @raise Failure if no simulator was registered — call
    [Clustersim.Sim_exec.register ()] first (the simulator library
    depends on this one, so it wires itself in at run time). *)

type sim_factory = monitor:Budget.monitor -> workers:int -> t

val register_sim : sim_factory -> unit
(** Install the {!sim} backend factory (idempotent; last wins). *)
