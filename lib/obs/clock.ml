let now_ns = Monotonic_clock.now

let ns_to_s ns = Int64.to_float ns /. 1e9
let ns_to_us ns = Int64.to_float ns /. 1e3

type counter = int64

let counter () = now_ns ()
let elapsed_ns c = Int64.sub (now_ns ()) c
let elapsed_s c = ns_to_s (elapsed_ns c)

let time f =
  let c = counter () in
  let x = f () in
  (x, elapsed_s c)
