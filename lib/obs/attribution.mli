(** Search forensics: pruning attribution by reason and depth, plus
    per-depth expansion and branching-factor profiles.

    The aggregate [bnb.pruned] counter says {e how much} was pruned;
    this module records {e why} (which bound fired) and {e where} (at
    what insertion depth), which is what explains one run being slower
    than another.

    Two levels:

    - {!cells} — a flat, single-writer record embedded in each run's
      [Bnb.Stats].  Recording is a plain array increment; cells merge by
      element-wise addition ({!add_cells}), mirroring [Stats.add].
    - {!t} — the process-wide aggregate, sharded into per-domain atomic
      cells like {!Obs.Metrics} so concurrent solves {!flush} their
      cells lock-free.  {!default} is what the CLI's [--metrics] /
      [--explain] read. *)

(** Why a subtree was discarded (or a search stopped). *)
type reason =
  | Incumbent  (** the node's own cost already met the incumbent bound *)
  | Lb1_suffix
      (** only cost {e plus} the LB1 remaining-species suffix met the
          bound — the prunes the paper's lower bound is responsible for *)
  | Filter33  (** discarded by the 3-3 relationship heuristic *)
  | Kernel_threshold
      (** dropped inside the incremental expansion kernel before the
          child tree was ever realised *)
  | Budget_stop
      (** a budget (deadline, node cap, cancellation) stopped the search
          at this node; the subtree went to the frontier, not the bin *)
  | Gap_tolerance
      (** neither the node's cost nor its bound met the incumbent — only
          the optimality-gap tolerance [lb * (1 + eps) >= incumbent] did.
          The prunes a [--gap] run trades for its certified (1+eps)
          guarantee; always zero when [eps = 0] *)

val n_reasons : int
val reasons : reason list
(** All reasons, in a fixed serialisation order. *)

val reason_to_string : reason -> string
val reason_of_string : string -> reason option

val n_depth_buckets : int
(** Depth axis size.  Depth [d] (the BBT node's species count [k]) maps
    to bucket [min d (n_depth_buckets - 1)]. *)

val depth_bucket : int -> int

val set_enabled : bool -> unit
(** Globally enable/disable recording (default: enabled).  Exists so the
    bench harness can measure the overhead of attribution itself;
    disabling never changes search behaviour, only whether the arrays
    are written. *)

val is_enabled : unit -> bool

(** {1 Single-writer cells} *)

type cells

val cells : unit -> cells
(** Fresh all-zero cells (a few hundred words). *)

val prune : cells -> reason -> depth:int -> int -> unit
(** [prune c reason ~depth n] records [n] pruning events at [depth].
    No-op when [n <= 0] or recording is disabled. *)

val expand : cells -> depth:int -> generated:int -> unit
(** Record one expansion of a depth-[depth] node that generated
    [generated] children. *)

val add_cells : cells -> cells -> unit
(** [add_cells acc s] element-wise accumulates [s] into [acc]. *)

val total : cells -> reason -> int
val total_prunes : cells -> int
val total_expanded : cells -> int
val prunes_at : cells -> reason -> depth:int -> int

val cells_to_json : cells -> Json.t
(** The manifest [attribution] section: per-reason totals and sparse
    [[depth, count], ...] rows, plus expanded/generated depth profiles
    (branching factor at depth [d] is [generated/expanded]). *)

val cells_of_json : Json.t -> (cells, string) result
(** Inverse of {!cells_to_json} (up to unknown reason names, which are
    skipped).  Lets attribution cross process boundaries bit-exactly —
    a remote executor's result carries its cells so the merged manifest
    matches a local run. *)

val pp_summary : Format.formatter -> cells -> unit
(** Human rendering: pruning reasons ranked by share, then the depth
    profile with average branching factors — the core of the CLI's
    [--explain] output. *)

(** {1 Process-wide sharded aggregate} *)

type t

val create : unit -> t

val default : t
(** The process-wide instance the solvers flush into. *)

val flush : ?into:t -> cells -> unit
(** Lock-free: one [Atomic.fetch_and_add] per non-zero cell, on the
    shard indexed by the calling domain. *)

val snapshot : t -> cells
(** Merged over shards. *)

val to_json : t -> Json.t
val reset : t -> unit
