(** The pure half of [phylo top].

    [phylo top] polls a {!Serve} endpoint ([/events] + [/metrics]) and
    repaints a terminal dashboard.  Everything except the polling loop
    lives here, side-effect free: {!parse_prometheus} reads an
    exposition body back into samples, {!update} folds one poll into a
    {!state}, and {!render} produces the full frame as a string — so
    tests can drive the dashboard from canned inputs and snapshot the
    output. *)

(** {1 Prometheus exposition reader} *)

type sample =
  | Counter of float
  | Gauge of float
  | Histogram of { buckets : (float * float) list; sum : float; count : float }
      (** [buckets] are [(le, cumulative count)] pairs in exposition
          order; the [+Inf] bound parses as [infinity]. *)

val parse_prometheus : string -> (string * sample) list
(** Parse a text-exposition body (version 0.0.4) into name-sorted
    samples.  [_bucket]/[_sum]/[_count] series of a [# TYPE _ histogram]
    reassemble into one {!Histogram}; unparseable lines are skipped. *)

val find : (string * sample) list -> string -> sample option
val value : (string * sample) list -> string -> float option
(** The scalar of a counter or gauge; [None] for histograms/missing. *)

val quantile_of_sorted : float array -> float -> float
(** Linear-interpolated quantile of an ascending-sorted array; NaN when
    empty. *)

(** {1 Dashboard state} *)

type state

val init : state

val last_seq : state -> int
(** Highest event sequence folded in so far — pass as [?since] on the
    next [/events] poll. *)

val update :
  state ->
  now_s:float ->
  events:Json.t list ->
  metrics:(string * sample) list ->
  dropped:int ->
  state
(** Fold one poll: [events] are parsed [/events] lines (envelope
    included), [metrics] a parsed [/metrics] body, [now_s] the poll
    time on any monotonic scale (used only for the nodes/s rate between
    consecutive polls). *)

val render : tty:bool -> state -> string
(** The full frame.  [~tty:true] wraps it in cursor-home/clear-to-end
    escapes for flicker-free repaint; [~tty:false] is plain lines with
    no escape codes — what non-interactive runs log and tests
    snapshot. *)
