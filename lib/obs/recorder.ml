(* A lock-free flight recorder: the last ~capacity telemetry events,
   cheap enough to leave armed through a branch-and-bound inner loop.

   Layout mirrors [Metrics]: the buffer is sharded into [n_shards]
   rings and a writer only touches the ring indexed by its domain id,
   so concurrent workers do not contend on a head pointer.  Each ring
   is a fixed array of slots; a write claims the next slot index with
   one [fetch_and_add] (two domains can share a shard when there are
   more than [n_shards] of them) and publishes the boxed entry with one
   atomic store.  A full ring overwrites its oldest slot instead of
   blocking or allocating: the per-shard overwrite count is the drop
   counter.  Readers snapshot by scanning the slots — a reader racing a
   wrap can miss an entry that is being overwritten, never see a torn
   one (entries are immutable records published by pointer store). *)

let n_shards = 16 (* power of two, like Metrics *)

type entry = { seq : int; t_s : float; domain : int; kind : Events.kind }

type shard = {
  slots : entry option Atomic.t array;
  next : int Atomic.t;  (* total writes to this shard *)
}

type t = {
  shards : shard array;
  shard_capacity : int;
  seq : int Atomic.t;  (* global sequence; first event gets 1 *)
  origin : int64;  (* monotonic ns at creation *)
  last_emit_ns : int64 Atomic.t;  (* 0 until the first event *)
}

let create ?(capacity = 4096) () =
  if capacity < n_shards then
    invalid_arg
      (Printf.sprintf "Obs.Recorder.create: capacity %d < %d shards" capacity
         n_shards);
  let shard_capacity = capacity / n_shards in
  {
    shards =
      Array.init n_shards (fun _ ->
          {
            slots = Array.init shard_capacity (fun _ -> Atomic.make None);
            next = Atomic.make 0;
          });
    shard_capacity;
    seq = Atomic.make 0;
    origin = Clock.now_ns ();
    last_emit_ns = Atomic.make 0L;
  }

let capacity t = t.shard_capacity * n_shards

let emit t kind =
  let now = Clock.now_ns () in
  let entry =
    {
      seq = 1 + Atomic.fetch_and_add t.seq 1;
      t_s = Clock.ns_to_s (Int64.sub now t.origin);
      domain = (Domain.self () :> int);
      kind;
    }
  in
  let shard = t.shards.(entry.domain land (n_shards - 1)) in
  let i = Atomic.fetch_and_add shard.next 1 in
  Atomic.set shard.slots.(i mod t.shard_capacity) (Some entry);
  Atomic.set t.last_emit_ns now

let last_seq t = Atomic.get t.seq

let dropped t =
  Array.fold_left
    (fun acc s -> acc + Int.max 0 (Atomic.get s.next - t.shard_capacity))
    0 t.shards

let snapshot ?(since = 0) t =
  let acc = ref [] in
  Array.iter
    (fun s ->
      Array.iter
        (fun slot ->
          match (Atomic.get slot : entry option) with
          | Some e when e.seq > since -> acc := e :: !acc
          | Some _ | None -> ())
        s.slots)
    t.shards;
  List.sort (fun (a : entry) b -> compare a.seq b.seq) !acc

let heartbeat_staleness_s t =
  match Atomic.get t.last_emit_ns with
  | 0L -> None
  | last -> Some (Clock.ns_to_s (Int64.sub (Clock.now_ns ()) last))

(* --- ambient instance --- *)

let ambient : t option Atomic.t = Atomic.make None

let install t = Atomic.set ambient (Some t)
let uninstall () = Atomic.set ambient None
let installed () = Atomic.get ambient
let enabled () = Atomic.get ambient <> None

let emit_ambient kind =
  match Atomic.get ambient with None -> () | Some t -> emit t kind

(* --- rate-limited worker pulses ---

   One per worker loop; [sample] costs a single atomic load when no
   recorder is installed.  When one is, even a monotonic-clock read per
   expansion is measurable (~10% on the cheapest solves), so the clock
   is only consulted every [check_every] calls: a plain countdown
   decrement is the steady-state cost.  The countdown is deliberately
   non-atomic — each pulse has a single owner (one worker loop); two
   racing owners would only skew the heartbeat cadence, never corrupt
   the recorder. *)

let check_every = 32

type pulse = {
  interval_ns : int64;
  next_due : int64 Atomic.t;
  mutable countdown : int;  (* calls until the next clock check *)
}

let pulse ?(interval_s = 0.5) () =
  {
    interval_ns = Int64.of_float (interval_s *. 1e9);
    next_due = Atomic.make Int64.min_int;
    countdown = 1 (* first call checks, so short runs still heartbeat *);
  }

let sample p ~worker ~expanded ~pruned ~open_nodes ~ub ~lb =
  match Atomic.get ambient with
  | None -> false
  | Some t ->
      p.countdown <- p.countdown - 1;
      if p.countdown > 0 then false
      else begin
        p.countdown <- check_every;
        let now = Clock.now_ns () in
        let due = Atomic.get p.next_due in
        if
          now >= due
          && Atomic.compare_and_set p.next_due due
               (Int64.add now p.interval_ns)
        then begin
          emit t
            (Events.Heartbeat { worker; expanded; pruned; open_nodes; ub; lb });
          true
        end
        else false
      end

(* --- serialisation --- *)

let entry_to_json (e : entry) =
  Events.to_json ~seq:e.seq ~t_s:e.t_s ~domain:e.domain e.kind

let to_ndjson entries =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Json.to_buffer buf (entry_to_json e);
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let flight_to_json t =
  Json.Obj
    [
      ("flight_recorder", Json.Bool true);
      ("written_at", Json.String (Report.iso8601 (Unix.gettimeofday ())));
      ("capacity", Json.Int (capacity t));
      ("last_seq", Json.Int (last_seq t));
      ("dropped", Json.Int (dropped t));
      ("events", Json.List (List.map entry_to_json (snapshot t)));
    ]

let dump_flight t path = Json.write_file path (flight_to_json t)
