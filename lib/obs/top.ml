(* The pure half of [phylo top]: fold polled /events + /metrics bodies
   into a state, render the state to a string.  No sockets, no clocks,
   no terminal probing — the CLI owns those — so the whole view is
   snapshot-testable from canned inputs. *)

(* --- a small Prometheus text-exposition reader --- *)

type sample =
  | Counter of float
  | Gauge of float
  | Histogram of { buckets : (float * float) list; sum : float; count : float }
      (* buckets: (le upper bound, cumulative count), in exposition order *)

let float_of_exposition s =
  match s with
  | "+Inf" | "Inf" -> Float.infinity
  | "-Inf" -> Float.neg_infinity
  | "NaN" -> Float.nan
  | s -> ( match float_of_string_opt s with Some v -> v | None -> Float.nan)

(* "name{le=\"2\"} 17" -> (name, Some le, value) *)
let parse_sample_line line =
  let sp =
    match String.rindex_opt line ' ' with Some i -> i | None -> -1
  in
  if sp <= 0 then None
  else
    let value =
      float_of_exposition (String.sub line (sp + 1) (String.length line - sp - 1))
    in
    let name_part = String.sub line 0 sp in
    match String.index_opt name_part '{' with
    | None -> Some (name_part, None, value)
    | Some b ->
        let name = String.sub name_part 0 b in
        let labels = String.sub name_part b (String.length name_part - b) in
        let le =
          (* only the le label matters to us *)
          let marker = "le=\"" in
          let rec find i =
            if i + String.length marker > String.length labels then None
            else if String.sub labels i (String.length marker) = marker then
              let start = i + String.length marker in
              match String.index_from_opt labels start '"' with
              | Some e -> Some (String.sub labels start (e - start))
              | None -> None
            else find (i + 1)
          in
          find 0
        in
        Some (name, Option.map float_of_exposition le, value)

let parse_prometheus body =
  (* Two passes: learn the TYPE of each name, then fold samples.
     Histogram series arrive as name_bucket/name_sum/name_count. *)
  let lines = String.split_on_char '\n' body in
  let types = Hashtbl.create 32 in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ "#"; "TYPE"; name; kind ] -> Hashtbl.replace types name kind
      | _ -> ())
    lines;
  let hists = Hashtbl.create 8 in
  let get_hist name =
    match Hashtbl.find_opt hists name with
    | Some h -> h
    | None ->
        let h = (ref [], ref 0., ref 0.) in
        Hashtbl.add hists name h;
        h
  in
  let strip_suffix ~suffix s =
    let ls = String.length s and lx = String.length suffix in
    if ls > lx && String.sub s (ls - lx) lx = suffix then
      Some (String.sub s 0 (ls - lx))
    else None
  in
  let flat = ref [] in
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] <> '#' then
        match parse_sample_line line with
        | None -> ()
        | Some (name, le, value) -> (
            let hist_base suffix =
              match strip_suffix ~suffix name with
              | Some base when Hashtbl.find_opt types base = Some "histogram"
                -> Some base
              | _ -> None
            in
            match (hist_base "_bucket", hist_base "_sum", hist_base "_count") with
            | Some base, _, _ ->
                let buckets, _, _ = get_hist base in
                let le = Option.value ~default:Float.infinity le in
                buckets := (le, value) :: !buckets
            | _, Some base, _ ->
                let _, sum, _ = get_hist base in
                sum := value
            | _, _, Some base ->
                let _, _, count = get_hist base in
                count := value
            | None, None, None ->
                let sample =
                  if Hashtbl.find_opt types name = Some "counter" then
                    Counter value
                  else Gauge value
                in
                flat := (name, sample) :: !flat))
    lines;
  let hist_samples =
    Hashtbl.fold
      (fun name (buckets, sum, count) acc ->
        ( name,
          Histogram
            { buckets = List.rev !buckets; sum = !sum; count = !count } )
        :: acc)
      hists []
  in
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (!flat @ hist_samples)

let find metrics name = List.assoc_opt name metrics

let value metrics name =
  match find metrics name with
  | Some (Counter v) | Some (Gauge v) -> Some v
  | _ -> None

(* --- quantiles over sorted samples (block solve times from events) --- *)

let quantile_of_sorted xs q =
  match Array.length xs with
  | 0 -> Float.nan
  | n ->
      let q = Float.min 1. (Float.max 0. q) in
      let pos = q *. float_of_int (n - 1) in
      let i = int_of_float pos in
      if i >= n - 1 then xs.(n - 1)
      else
        let frac = pos -. float_of_int i in
        xs.(i) +. (frac *. (xs.(i + 1) -. xs.(i)))

(* --- state --- *)

type worker_row = {
  worker : int;
  expanded : int;
  pruned : int;
  open_nodes : int;
  ub : float;
  lb : float;
  seen_t_s : float;  (* the heartbeat's own t_s *)
}

type state = {
  last_seq : int;
  dropped : int;
  incumbent : float option;
  incumbents : int;  (* how many improvements seen *)
  run_n : int option;
  run_blocks : int option;
  blocks_done : int;
  block_solves_s : float list;  (* newest first *)
  running_blocks : (int * int) list;  (* id, size — started, not finished *)
  budget_status : string option;
  checkpoints : int;
  workers : worker_row list;  (* sorted by worker id *)
  metrics : (string * sample) list;
  (* nodes/s between the two most recent updates *)
  rate_basis : (float * float) option;  (* now_s, bnb_expanded *)
  nodes_per_s : float option;
  polls : int;
}

let init =
  {
    last_seq = 0;
    dropped = 0;
    incumbent = None;
    incumbents = 0;
    run_n = None;
    run_blocks = None;
    blocks_done = 0;
    block_solves_s = [];
    running_blocks = [];
    budget_status = None;
    checkpoints = 0;
    workers = [];
    metrics = [];
    rate_basis = None;
    nodes_per_s = None;
    polls = 0;
  }

let last_seq t = t.last_seq

let apply_event st j =
  let seq =
    Option.value ~default:0 (Option.bind (Json.member "seq" j) Json.to_int_opt)
  in
  let t_s =
    Option.value ~default:0.
      (Option.bind (Json.member "t_s" j) Json.to_float_opt)
  in
  let st = { st with last_seq = Int.max st.last_seq seq } in
  match Events.of_json j with
  | None -> st
  | Some kind -> (
      match kind with
      | Events.Incumbent { cost } ->
          let better =
            match st.incumbent with None -> true | Some c -> cost < c
          in
          {
            st with
            incumbent = (if better then Some cost else st.incumbent);
            incumbents = st.incumbents + 1;
          }
      | Events.Run_start { n; n_blocks } ->
          {
            st with
            run_n = Some n;
            run_blocks = Some n_blocks;
            blocks_done = 0;
            block_solves_s = [];
            running_blocks = [];
          }
      | Events.Block_start { id; size } ->
          { st with running_blocks = (id, size) :: st.running_blocks }
      | Events.Block_finish { id; solve_s; _ } ->
          {
            st with
            blocks_done = st.blocks_done + 1;
            block_solves_s = solve_s :: st.block_solves_s;
            running_blocks =
              List.filter (fun (i, _) -> i <> id) st.running_blocks;
          }
      | Events.Checkpoint_write _ -> { st with checkpoints = st.checkpoints + 1 }
      | Events.Budget_tick _ -> st
      | Events.Budget_stop { status } -> { st with budget_status = Some status }
      | Events.Heartbeat { worker; expanded; pruned; open_nodes; ub; lb } ->
          let row =
            { worker; expanded; pruned; open_nodes; ub; lb; seen_t_s = t_s }
          in
          let others = List.filter (fun w -> w.worker <> worker) st.workers in
          {
            st with
            workers =
              List.sort (fun a b -> compare a.worker b.worker) (row :: others);
          })

(* The bnb_expanded counter only advances when a block solve finishes
   and flushes its stats, so a long single-block run would show no rate
   at all; fall back to the live per-worker heartbeat counters then. *)
let expanded_estimate st metrics =
  match value metrics "bnb_expanded" with
  | Some e -> Some e
  | None -> (
      match st.workers with
      | [] -> None
      | ws ->
          Some
            (List.fold_left
               (fun acc w -> acc +. float_of_int w.expanded)
               0. ws))

let update st ~now_s ~events ~metrics ~dropped =
  let st = List.fold_left apply_event st events in
  let expanded = expanded_estimate st metrics in
  let nodes_per_s, rate_basis =
    match (expanded, st.rate_basis) with
    | Some e, Some (t0, e0) when now_s > t0 ->
        (Some (Float.max 0. ((e -. e0) /. (now_s -. t0))), Some (now_s, e))
    | Some e, _ -> (st.nodes_per_s, Some (now_s, e))
    | None, basis -> (st.nodes_per_s, basis)
  in
  { st with metrics; dropped; nodes_per_s; rate_basis; polls = st.polls + 1 }

(* --- rendering --- *)

let fmt_f v =
  if Float.is_nan v then "-"
  else if Float.is_integer v && Float.abs v < 1e12 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let fmt_opt = function None -> "-" | Some v -> fmt_f v

let fmt_si v =
  if Float.is_nan v then "-"
  else if v >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let prune_reasons =
  [ "incumbent"; "lb1_suffix"; "filter_33"; "kernel_threshold"; "budget_stop" ]

let render_plain st =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let gap =
    match st.incumbent with
    | Some ub when ub > 0. -> (
        (* best over workers' reported lower bounds *)
        let lbs =
          List.filter_map
            (fun w -> if Float.is_nan w.lb then None else Some w.lb)
            st.workers
        in
        match lbs with
        | [] -> None
        | lbs ->
            let lb = List.fold_left Float.min Float.infinity lbs in
            if Float.is_finite lb then Some (100. *. (ub -. lb) /. ub) else None)
    | _ -> None
  in
  line "phylo top — incumbent %s (%d improvement%s)%s%s"
    (fmt_opt st.incumbent) st.incumbents
    (if st.incumbents = 1 then "" else "s")
    (match gap with
    | Some g -> Printf.sprintf "  gap %.1f%%" (Float.max 0. g)
    | None -> "")
    (match st.budget_status with
    | Some s -> Printf.sprintf "  [budget: %s]" s
    | None -> "");
  (match (st.run_n, st.run_blocks) with
  | Some n, Some blocks ->
      let solves = Array.of_list (List.sort compare st.block_solves_s) in
      line "run: n=%d  blocks %d/%d done%s%s" n st.blocks_done blocks
        (match st.running_blocks with
        | [] -> ""
        | rb -> Printf.sprintf "  (%d running)" (List.length rb))
        (if Array.length solves = 0 then ""
         else
           Printf.sprintf "  block solve p50 %.3fs p95 %.3fs"
             (quantile_of_sorted solves 0.50)
             (quantile_of_sorted solves 0.95))
  | _ -> ());
  let expanded = expanded_estimate st st.metrics in
  let queue = value st.metrics "domain_pool_queue_depth" in
  let busy = value st.metrics "domain_pool_busy" in
  let pool_size = value st.metrics "domain_pool_size" in
  line "nodes: %s expanded  %s nodes/s%s%s"
    (match expanded with Some e -> fmt_si e | None -> "-")
    (match st.nodes_per_s with Some r -> fmt_si r | None -> "-")
    (match queue with
    | Some q when Float.is_finite q -> Printf.sprintf "  queue %s" (fmt_f q)
    | _ -> "")
    (match (busy, pool_size) with
    | Some bu, Some sz when Float.is_finite bu && Float.is_finite sz ->
        Printf.sprintf "  busy %s/%s" (fmt_f bu) (fmt_f sz)
    | Some bu, _ when Float.is_finite bu ->
        Printf.sprintf "  busy %s" (fmt_f bu)
    | _ -> "");
  (* prune-reason shares from bnb_pruned_<reason> counters *)
  let reason_counts =
    List.filter_map
      (fun r ->
        match value st.metrics ("bnb_pruned_" ^ r) with
        | Some v when v > 0. -> Some (r, v)
        | _ -> None)
      prune_reasons
  in
  (match reason_counts with
  | [] -> ()
  | counts ->
      let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. counts in
      line "prune: %s"
        (String.concat "  "
           (List.map
              (fun (r, v) ->
                Printf.sprintf "%s %.1f%%" r (100. *. v /. total))
              counts)));
  List.iter
    (fun w ->
      (* TCP workers piggyback a Procstat sample on every heartbeat; the
         coordinator republishes it as proc.worker<N>.* gauges, which the
         /metrics scrape sanitises to proc_worker<N>_... names. *)
      let rss =
        match
          value st.metrics (Printf.sprintf "proc_worker%d_rss_bytes" w.worker)
        with
        | Some r when Float.is_finite r && r > 0. ->
            Printf.sprintf "  rss %sB" (fmt_si r)
        | _ -> ""
      in
      line "worker %d: expanded %s  pruned %s  open %s  ub %s  lb %s%s"
        w.worker
        (fmt_si (float_of_int w.expanded))
        (fmt_si (float_of_int w.pruned))
        (fmt_si (float_of_int w.open_nodes))
        (fmt_f w.ub) (fmt_f w.lb) rss)
    st.workers;
  line "events: last_seq %d  dropped %d  checkpoints %d  polls %d" st.last_seq
    st.dropped st.checkpoints st.polls;
  Buffer.contents b

let render ~tty st =
  if tty then
    (* Home + clear-to-end keeps the repaint flicker-free; the trailing
       clear handles a view that shrank since the last frame. *)
    "\x1b[H" ^ render_plain st ^ "\x1b[J"
  else render_plain st
