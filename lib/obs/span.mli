(** Named, nestable spans on the monotonic clock.

    A {!buffer} is a thread-safe in-memory trace: spans from any domain
    append to it.  Instrumentation sites call {!with_span}; when no
    buffer is installed (the default) that is a single atomic load and a
    direct call, so spans can stay in the hot paths permanently.

    Nesting needs no explicit parent: the Chrome trace viewer (and the
    tests) reconstruct the hierarchy from the [ts]/[dur] intervals of
    events on the same thread id. *)

type event = {
  name : string;
  cat : string;
  ph : string;
      (** Chrome phase: ["X"] complete span (the default), ["M"]
          metadata (see {!set_process_name}) *)
  start_ns : int64;  (** relative to the buffer's creation *)
  dur_ns : int64;
  pid : int;  (** process track; {!self_pid} is the recording process *)
  tid : int;  (** domain id (or a caller-chosen remote track id) *)
  args : (string * Json.t) list;
}

val self_pid : int
(** The [pid] track local spans are recorded on (1).  Merged remote
    spans — e.g. worker spans re-recorded by the [Net_exec]
    coordinator — use other pids, one per remote process. *)

type buffer

val create : ?capacity:int -> unit -> buffer
(** In-memory trace buffer; events beyond [capacity] (default 1e6) are
    dropped rather than growing without bound. *)

val install : buffer -> unit
(** Make [buffer] the ambient trace that {!with_span} records into. *)

val uninstall : unit -> unit
val installed : unit -> buffer option
val enabled : unit -> bool

val record :
  buffer ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ?pid:int ->
  ?tid:int ->
  start_ns:int64 ->
  stop_ns:int64 ->
  string ->
  unit
(** Append an already-measured span ([start_ns]/[stop_ns] from
    {!Clock.now_ns}, or remote timestamps already translated into this
    process's clock).  [pid] (default {!self_pid}) selects the process
    track; [tid] defaults to the calling domain's id. *)

val set_process_name : buffer -> pid:int -> string -> unit
(** Record a Chrome [process_name] metadata event, labelling the [pid]
    track in the viewers (e.g. ["coordinator"], ["worker 0"]). *)

val origin : buffer -> int64
(** The buffer's creation time ({!Clock.now_ns}); recorded spans store
    timestamps relative to it. *)

val with_span :
  ?buffer:buffer ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] times [f] and records it into [buffer] (default:
    the installed ambient buffer; a no-op when there is none).  The span
    is recorded even if [f] raises. *)

val events : buffer -> event list
(** Completed spans in completion order. *)

val length : buffer -> int

val to_chrome_json : buffer -> Json.t
(** The buffer as a Chrome-tracing / Perfetto JSON document
    ([traceEvents] of ["ph": "X"] complete events, microsecond units). *)

val write_chrome : buffer -> string -> unit

(** {1 Incremental streaming} *)

val stream_to :
  ?flush_every:int -> ?flush_interval_s:float -> buffer -> string -> unit
(** Attach an incremental writer: from now on every recorded event also
    flows to [path] in Chrome's JSON Array Format, buffered and flushed
    whenever [flush_every] (default 256) events are pending or
    [flush_interval_s] (default 1.0) has elapsed since the last flush —
    whichever comes first, checked at record time.  Each flush ends on a
    complete event object, so a run killed mid-solve leaves a trace the
    viewers and {!load_trace} still read (the Array Format's closing
    ["]"] is optional).  A previously attached stream is finalised
    first.  The in-memory buffer is unaffected (streamed events still
    count against [capacity] only for the in-memory copy). *)

val close_stream : buffer -> unit
(** Flush pending events, terminate the array and close the file.  A
    no-op when no stream is attached. *)

val load_trace : string -> (Json.t list, string) result
(** Read a trace file back as its list of event objects.  Accepts both
    the [write_chrome] full-object format and the (possibly truncated)
    Array Format a killed stream leaves behind.  Recovery scans back to
    the longest prefix ending on a complete top-level event and drops
    the rest — at worst the single event being written when the process
    died is lost; a cut inside a nested object can never be accepted as
    an event boundary. *)
