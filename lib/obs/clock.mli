(** Monotonic wall clock.

    All telemetry timing goes through this module rather than
    [Unix.gettimeofday]: the monotonic clock cannot go backwards or jump
    under NTP adjustment, so elapsed times are always non-negative. *)

val now_ns : unit -> int64
(** Nanoseconds on [CLOCK_MONOTONIC].  Only differences are meaningful. *)

val ns_to_s : int64 -> float
val ns_to_us : int64 -> float

type counter
(** A started stopwatch. *)

val counter : unit -> counter
val elapsed_ns : counter -> int64
val elapsed_s : counter -> float

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds. *)
