(** A dependency-free HTTP/1.1 telemetry listener.

    One background thread serves three read-only endpoints from
    process-wide telemetry state:

    - [/metrics] — the {!Metrics} registry in Prometheus text
      exposition format (version 0.0.4), deterministically ordered;
    - [/healthz] — liveness JSON with uptime and the {!Recorder}
      heartbeat staleness; HTTP 503 once the staleness exceeds the
      configured threshold;
    - [/events?since=N] — the flight recorder's retained events with
      [seq > N] as NDJSON, one object per line.

    Requests are handled serially in the accept thread — every endpoint
    is a sub-millisecond render of in-memory atomics, and the solver
    domains never block on the listener.  Binding port 0 picks an
    ephemeral port; read it back with {!port} / {!addr_string}.

    An application {!handler} (the [phylo serve] daemon) turns the
    listener into a small application server: handler requests may
    carry POST bodies (read per [Content-Length], bounded at 8 MiB) and
    each connection then runs on its own thread, with {!stop} joining
    those threads so shutdown drains in-flight requests. *)

type target = Tcp of string * int | Unix_sock of string

val target_of_string : string -> (target, string) result
(** Accepts [HOST:PORT], [:PORT], a bare port, an [http://] URL prefix
    of those, or a filesystem path (starting with [/] or [.]) to a Unix
    socket. *)

type t

val src : Logs.src
(** Log source ["obs.serve"].  The access log — one [info] line per
    request, [METH PATH -> STATUS [REQUEST-ID]] — is emitted here;
    raise this source to [Info] to see it at default verbosity. *)

type handler =
  request_id:string ->
  meth:string ->
  path:string ->
  query:(string * string) list ->
  body:string ->
  (int * string * string) option
(** An application request handler, consulted before the builtin
    endpoints.  Returns [Some (status, content_type, body)] to answer
    the request, or [None] to fall through to the builtins (so a
    handler-equipped listener still serves [/metrics] and [/healthz]).
    An exception escaping the handler answers 500 (the response is
    still written and the connection closed cleanly).  [request_id] is
    the client's sane [X-Request-Id] or a minted [req-<pid>-<seq>]; it
    is echoed on the response's [X-Request-Id] header and in the access
    log, and the handler can thread it into whatever work it starts.
    Runs on a per-connection thread; must be thread-safe.

    Requests whose declared [Content-Length] exceeds the 8 MiB body
    bound are answered 413 without consulting the handler.  [/metrics]
    refreshes the process's own [proc.gc.*] / [proc.rss_bytes] gauges
    on every scrape. *)

val start :
  ?registry:Metrics.registry ->
  ?recorder:Recorder.t ->
  ?stale_after_s:float ->
  ?handler:handler ->
  ?host:string ->
  ?port:int ->
  ?socket:string ->
  unit ->
  t
(** Bind and start the accept thread.  Defaults: the process-wide
    {!Metrics.default} registry, no recorder ([/events] answers 404 and
    [/healthz] reports null staleness), [stale_after_s = 10.], no
    {!handler} (serial accept loop, builtin endpoints only),
    [host = "127.0.0.1"], [port = 0] (ephemeral).  Pass [~socket:path]
    {e instead of} a port to listen on a Unix socket (an existing file
    at [path] is replaced).  SIGPIPE is set to ignore so disconnecting
    clients cannot kill the process.
    @raise Invalid_argument when both [~port] and [~socket] are given.
    @raise Unix.Unix_error when the bind fails (port taken, bad host). *)

val port : t -> int option
(** The bound TCP port (the real one when port 0 was requested);
    [None] for Unix sockets. *)

val addr_string : t -> string
(** ["http://HOST:PORT"] or the socket path — what gets logged and what
    [phylo top] takes. *)

val stop : t -> unit
(** Close the listening socket, join the accept thread — then join any
    in-flight per-connection handler threads, so every accepted request
    is answered before [stop] returns — and unlink the Unix socket file
    if any.  Idempotent in effect; safe to call from [Fun.protect]
    finalisers. *)

(** {1 Minimal client}

    Enough HTTP for [phylo top], the tests and CI smoke jobs — not a
    general-purpose client. *)

val request :
  ?meth:string -> ?body:string -> target -> string -> (int * string, string) result
(** [request target path] performs one request (default [GET], no body)
    and returns [(status code, response body)], or [Error] with a
    human-readable reason on connection/protocol failure.  [~body]
    is sent with its [Content-Length]; pair it with [~meth:"POST"]. *)

val request_full :
  ?meth:string ->
  ?body:string ->
  target ->
  string ->
  (int * (string * string) list * string, string) result
(** Like {!request} but also returns the response headers as
    [(lowercased-name, value)] pairs — e.g. to read [x-request-id]. *)

val get : target -> string -> (int * string, string) result
(** [request] with the defaults. *)
