type phase = {
  phase_name : string;
  elapsed_s : float;
  meta : (string * Json.t) list;
}

type t = {
  name : string;
  created_at : float;  (* Unix epoch seconds, for the manifest header *)
  lock : Mutex.t;
  mutable phases : phase list;  (* newest first *)
  mutable fields : (string * Json.t) list;  (* newest first *)
  mutable workers : Json.t list;  (* newest first *)
}

let create name =
  {
    name;
    created_at = Unix.gettimeofday ();
    lock = Mutex.create ();
    phases = [];
    fields = [];
    workers = [];
  }

(* --- run metadata --- *)

let iso8601 epoch_s =
  let tm = Unix.gmtime epoch_s in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* One `git describe` per process: manifests are written at run end, and
   the answer cannot change underneath a run we would want to label. *)
let git_describe =
  lazy
    (try
       let ic =
         Unix.open_process_in "git describe --always --dirty 2>/dev/null"
       in
       let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
       match (Unix.close_process_in ic, line) with
       | Unix.WEXITED 0, Some l when l <> "" -> Some l
       | _ -> None
     with _ -> None)

let hostname = lazy (try Unix.gethostname () with _ -> "unknown")

let meta_json created_at =
  Json.Obj
    ([
       ("started_at", Json.String (iso8601 created_at));
       ("hostname", Json.String (Lazy.force hostname));
       ("ocaml_version", Json.String Sys.ocaml_version);
     ]
    @
    match Lazy.force git_describe with
    | Some g -> [ ("git", Json.String g) ]
    | None -> [])

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set t key v =
  locked t (fun () ->
      t.fields <- (key, v) :: List.remove_assoc key t.fields)

let add_phase t ?(meta = []) phase_name elapsed_s =
  locked t (fun () ->
      t.phases <- { phase_name; elapsed_s; meta } :: t.phases)

let timed_phase t ?meta name f =
  (* One call site feeds both the manifest and the ambient trace, so
     phase names line up across the two outputs. *)
  let x, elapsed_s = Clock.time (fun () -> Span.with_span name f) in
  add_phase t ?meta name elapsed_s;
  x

let add_worker t fields = locked t (fun () -> t.workers <- Json.Obj fields :: t.workers)

let workers t = locked t (fun () -> List.rev t.workers)

let created_at t = t.created_at

let field t key = locked t (fun () -> List.assoc_opt key t.fields)

let fields t = locked t (fun () -> List.rev t.fields)

let phases t =
  locked t (fun () ->
      List.rev_map (fun p -> (p.phase_name, p.elapsed_s)) t.phases)

let phase_total_s t =
  List.fold_left (fun acc (_, s) -> acc +. s) 0. (phases t)

let to_json t =
  locked t (fun () ->
      let phase_json p =
        Json.Obj
          (("name", Json.String p.phase_name)
          :: ("elapsed_s", Json.Float p.elapsed_s)
          :: p.meta)
      in
      Json.Obj
        ([
           ("name", Json.String t.name);
           ("created_at_epoch_s", Json.Float t.created_at);
           ("meta", meta_json t.created_at);
           ("phases", Json.List (List.rev_map phase_json t.phases));
         ]
        @ (if t.workers = [] then []
           else [ ("workers", Json.List (List.rev t.workers)) ])
        @ List.rev t.fields))

let write_file t path = Json.write_file path (to_json t)

let pp ppf t =
  Format.fprintf ppf "@[<v>manifest %s@," t.name;
  List.iter
    (fun (name, s) -> Format.fprintf ppf "  %-24s %.6f s@," name s)
    (phases t);
  Format.fprintf ppf "@]"
