(** A lock-free, fixed-capacity flight recorder of typed {!Events}.

    Keeps the last ~[capacity] events in per-domain ring shards (laid
    out like {!Metrics}: a writer touches only the shard indexed by its
    domain id).  A full shard {e overwrites} its oldest entry instead of
    blocking — {!dropped} counts the overwrites — so recording stays
    O(1) and allocation-light however far behind the readers are.

    Install one instance as the ambient recorder and the solvers emit
    incumbent improvements, block lifecycles, budget ticks and worker
    heartbeats into it; [/events] ({!Serve}) streams it, and
    {!dump_flight} serialises the tail next to the Chrome trace when a
    run dies (SIGINT, uncaught exception, budget stop).  With no
    recorder installed every emit site is a single atomic load. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 4096, at least 16) is split evenly over 16
    domain shards; a single-domain writer therefore keeps the last
    [capacity/16] events.
    @raise Invalid_argument when [capacity < 16]. *)

val capacity : t -> int

type entry = { seq : int; t_s : float; domain : int; kind : Events.kind }
(** [seq] is the global, gap-free emission number (from 1); [t_s] is
    seconds since the recorder was created. *)

val emit : t -> Events.kind -> unit
(** Record one event: one [fetch_and_add] on the global sequence, one
    on the shard cursor, one pointer store.  Never blocks. *)

val last_seq : t -> int
val dropped : t -> int
(** Events overwritten before {!snapshot} could have seen them. *)

val snapshot : ?since:int -> t -> entry list
(** Retained events with [seq > since], in sequence order.  A snapshot
    racing concurrent writers can miss entries being overwritten but
    never yields a torn or duplicated one. *)

val heartbeat_staleness_s : t -> float option
(** Seconds since the last emit of any kind; [None] before the first.
    What [/healthz] reports as worker-health staleness. *)

(** {1 Ambient instance} *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option
val enabled : unit -> bool

val emit_ambient : Events.kind -> unit
(** Emit into the installed recorder; a no-op (one atomic load) when
    none is installed — emit sites stay in place permanently. *)

(** {1 Rate-limited worker pulses} *)

type pulse

val pulse : ?interval_s:float -> unit -> pulse
(** One per worker loop; [interval_s] defaults to 0.5 s. *)

val sample :
  pulse ->
  worker:int ->
  expanded:int ->
  pruned:int ->
  open_nodes:int ->
  ub:float ->
  lb:float ->
  bool
(** Emit a {!Events.Heartbeat} at most once per interval.  One atomic
    load when no recorder is installed; one countdown decrement on most
    calls when one is (the clock is only read every 32nd call).  Returns
    [true] when this call actually emitted — callers piggyback other
    rate-limited work (live metric flushes) on it.  A pulse is meant to
    be owned by a single worker loop. *)

(** {1 Serialisation} *)

val entry_to_json : entry -> Json.t
val to_ndjson : entry list -> string
(** One event object per line — the [/events] wire format. *)

val flight_to_json : t -> Json.t
val dump_flight : t -> string -> unit
(** Write the flight-recorder dump (retained events plus capacity and
    drop counters) as one JSON document. *)
