type event = {
  name : string;
  cat : string;
  start_ns : int64;  (* relative to the buffer's origin *)
  dur_ns : int64;
  tid : int;
  args : (string * Json.t) list;
}

type buffer = {
  lock : Mutex.t;
  mutable events : event list;  (* newest first *)
  mutable count : int;
  capacity : int;
  origin : int64;  (* monotonic ns at buffer creation *)
}

let create ?(capacity = 1_000_000) () =
  {
    lock = Mutex.create ();
    events = [];
    count = 0;
    capacity;
    origin = Clock.now_ns ();
  }

(* The ambient buffer.  [None] keeps [with_span] at the cost of one
   atomic load, so instrumentation can stay in place permanently. *)
let ambient : buffer option Atomic.t = Atomic.make None

let install buf = Atomic.set ambient (Some buf)
let uninstall () = Atomic.set ambient None
let installed () = Atomic.get ambient
let enabled () = Atomic.get ambient <> None

let add buf ev =
  Mutex.lock buf.lock;
  if buf.count < buf.capacity then begin
    buf.events <- ev :: buf.events;
    buf.count <- buf.count + 1
  end;
  Mutex.unlock buf.lock

let record buf ?(cat = "") ?(args = []) ~start_ns ~stop_ns name =
  add buf
    {
      name;
      cat;
      start_ns = Int64.sub start_ns buf.origin;
      dur_ns = Int64.max 0L (Int64.sub stop_ns start_ns);
      tid = (Domain.self () :> int);
      args;
    }

let with_span ?buffer ?cat ?args name f =
  let buf =
    match buffer with Some _ -> buffer | None -> Atomic.get ambient
  in
  match buf with
  | None -> f ()
  | Some buf ->
      let start_ns = Clock.now_ns () in
      Fun.protect
        ~finally:(fun () ->
          record buf ?cat ?args ~start_ns ~stop_ns:(Clock.now_ns ()) name)
        f

let events buf =
  Mutex.lock buf.lock;
  let evs = List.rev buf.events in
  Mutex.unlock buf.lock;
  evs

let length buf =
  Mutex.lock buf.lock;
  let n = buf.count in
  Mutex.unlock buf.lock;
  n

(* Chrome-tracing "complete" events (ph = "X"), timestamps in
   microseconds.  Load the file at chrome://tracing or ui.perfetto.dev. *)
let event_to_json ev =
  let base =
    [
      ("name", Json.String ev.name);
      ("ph", Json.String "X");
      ("ts", Json.Float (Clock.ns_to_us ev.start_ns));
      ("dur", Json.Float (Clock.ns_to_us ev.dur_ns));
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.tid);
    ]
  in
  let base = if ev.cat = "" then base else base @ [ ("cat", Json.String ev.cat) ] in
  let base =
    if ev.args = [] then base else base @ [ ("args", Json.Obj ev.args) ]
  in
  Json.Obj base

let to_chrome_json buf =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json (events buf)));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome buf path = Json.write_file path (to_chrome_json buf)
