type event = {
  name : string;
  cat : string;
  ph : string;  (* Chrome phase: "X" complete span, "M" metadata *)
  start_ns : int64;  (* relative to the buffer's origin *)
  dur_ns : int64;
  pid : int;  (* process track; 1 is the recording process *)
  tid : int;
  args : (string * Json.t) list;
}

let self_pid = 1

(* An attached incremental writer: events flow to disk in Chrome's JSON
   Array Format ("[" then comma-separated event objects; the closing "]"
   is optional for every viewer), buffered and flushed on a size or
   interval threshold.  Because each flush ends on a complete object, a
   run killed mid-solve leaves a trace that {!load_trace} — and the
   viewers — can still read. *)
type stream = {
  oc : out_channel;
  flush_every : int;
  flush_interval_ns : int64;
  mutable s_pending : event list;  (* newest first *)
  mutable s_pending_count : int;
  mutable last_flush_ns : int64;
  mutable wrote_any : bool;
}

type buffer = {
  lock : Mutex.t;
  mutable events : event list;  (* newest first *)
  mutable count : int;
  capacity : int;
  origin : int64;  (* monotonic ns at buffer creation *)
  mutable stream : stream option;
}

let create ?(capacity = 1_000_000) () =
  {
    lock = Mutex.create ();
    events = [];
    count = 0;
    capacity;
    origin = Clock.now_ns ();
    stream = None;
  }

(* The ambient buffer.  [None] keeps [with_span] at the cost of one
   atomic load, so instrumentation can stay in place permanently. *)
let ambient : buffer option Atomic.t = Atomic.make None

let install buf = Atomic.set ambient (Some buf)
let uninstall () = Atomic.set ambient None
let installed () = Atomic.get ambient
let enabled () = Atomic.get ambient <> None

(* Chrome-tracing events, timestamps in microseconds: "complete" spans
   (ph = "X", the default) plus "metadata" records (ph = "M", e.g.
   process_name, which label the per-process tracks merged traces put
   worker spans on).  Load the file at chrome://tracing or
   ui.perfetto.dev. *)
let event_to_json ev =
  if ev.ph = "M" then
    Json.Obj
      [
        ("name", Json.String ev.name);
        ("ph", Json.String "M");
        ("pid", Json.Int ev.pid);
        ("tid", Json.Int ev.tid);
        ("args", Json.Obj ev.args);
      ]
  else
    let base =
      [
        ("name", Json.String ev.name);
        ("ph", Json.String ev.ph);
        ("ts", Json.Float (Clock.ns_to_us ev.start_ns));
        ("dur", Json.Float (Clock.ns_to_us ev.dur_ns));
        ("pid", Json.Int ev.pid);
        ("tid", Json.Int ev.tid);
      ]
    in
    let base = if ev.cat = "" then base else base @ [ ("cat", Json.String ev.cat) ] in
    let base =
      if ev.args = [] then base else base @ [ ("args", Json.Obj ev.args) ]
    in
    Json.Obj base

(* Caller holds [buf.lock]. *)
let flush_stream_locked s ~now =
  List.iter
    (fun ev ->
      if s.wrote_any then output_string s.oc ",\n";
      output_string s.oc (Json.to_string (event_to_json ev));
      s.wrote_any <- true)
    (List.rev s.s_pending);
  s.s_pending <- [];
  s.s_pending_count <- 0;
  s.last_flush_ns <- now;
  flush s.oc

let add buf ev =
  Mutex.lock buf.lock;
  if buf.count < buf.capacity then begin
    buf.events <- ev :: buf.events;
    buf.count <- buf.count + 1
  end;
  (match buf.stream with
  | None -> ()
  | Some s ->
      (* The stream sees every event, including ones the capacity-capped
         in-memory list drops. *)
      s.s_pending <- ev :: s.s_pending;
      s.s_pending_count <- s.s_pending_count + 1;
      let now = Clock.now_ns () in
      if
        s.s_pending_count >= s.flush_every
        || Int64.sub now s.last_flush_ns >= s.flush_interval_ns
      then flush_stream_locked s ~now);
  Mutex.unlock buf.lock

let stream_to ?(flush_every = 256) ?(flush_interval_s = 1.0) buf path =
  if flush_every < 1 then invalid_arg "Span.stream_to: flush_every < 1";
  let oc = open_out path in
  output_string oc "[\n";
  flush oc;
  Mutex.lock buf.lock;
  let old = buf.stream in
  buf.stream <-
    Some
      {
        oc;
        flush_every;
        flush_interval_ns = Int64.of_float (flush_interval_s *. 1e9);
        s_pending = [];
        s_pending_count = 0;
        last_flush_ns = Clock.now_ns ();
        wrote_any = false;
      };
  Mutex.unlock buf.lock;
  match old with
  | None -> ()
  | Some s ->
      flush_stream_locked s ~now:(Clock.now_ns ());
      output_string s.oc "\n]\n";
      close_out s.oc

let close_stream buf =
  Mutex.lock buf.lock;
  let s = buf.stream in
  buf.stream <- None;
  (match s with
  | None -> ()
  | Some s ->
      flush_stream_locked s ~now:(Clock.now_ns ());
      output_string s.oc "\n]\n";
      close_out s.oc);
  Mutex.unlock buf.lock

let record buf ?(cat = "") ?(args = []) ?(pid = self_pid) ?tid ~start_ns
    ~stop_ns name =
  add buf
    {
      name;
      cat;
      ph = "X";
      start_ns = Int64.sub start_ns buf.origin;
      dur_ns = Int64.max 0L (Int64.sub stop_ns start_ns);
      pid;
      tid =
        (match tid with Some t -> t | None -> (Domain.self () :> int));
      args;
    }

let set_process_name buf ~pid label =
  add buf
    {
      name = "process_name";
      cat = "";
      ph = "M";
      start_ns = 0L;
      dur_ns = 0L;
      pid;
      tid = 0;
      args = [ ("name", Json.String label) ];
    }

let origin buf = buf.origin

let with_span ?buffer ?cat ?args name f =
  let buf =
    match buffer with Some _ -> buffer | None -> Atomic.get ambient
  in
  match buf with
  | None -> f ()
  | Some buf ->
      let start_ns = Clock.now_ns () in
      Fun.protect
        ~finally:(fun () ->
          record buf ?cat ?args ~start_ns ~stop_ns:(Clock.now_ns ()) name)
        f

let events buf =
  Mutex.lock buf.lock;
  let evs = List.rev buf.events in
  Mutex.unlock buf.lock;
  evs

let length buf =
  Mutex.lock buf.lock;
  let n = buf.count in
  Mutex.unlock buf.lock;
  n

let to_chrome_json buf =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json (events buf)));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome buf path = Json.write_file path (to_chrome_json buf)

(* Read a trace back: either the full-object format [write_chrome]
   emits or the (possibly truncated) JSON Array Format the incremental
   stream leaves behind.

   Recovery: a stream killed mid-write ends after any byte of the event
   being serialised.  Scanning back over candidate ['}'] positions and
   re-parsing [prefix ^ "]"] finds the longest prefix ending on a
   complete top-level event — a cut inside a nested [args] object cannot
   parse (its enclosing event object is unterminated), so the scan never
   accepts a half event.  At worst the one event being written when the
   process died is lost. *)
let load_trace path =
  match
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  with
  | exception Sys_error e -> Error e
  | raw -> (
      let events_of = function
        | Json.List l -> Ok l
        | Json.Obj _ as j -> (
            match Option.bind (Json.member "traceEvents" j) Json.to_list_opt with
            | Some l -> Ok l
            | None -> Error (path ^ ": no traceEvents array"))
        | _ -> Error (path ^ ": not a Chrome trace")
      in
      match Json.of_string raw with
      | Ok j -> events_of j
      | Error _ ->
          let rec recover i =
            match String.rindex_from_opt raw i '}' with
            | None ->
                (* No complete event: accept the bare "[" an interrupted
                   empty stream leaves. *)
                if String.trim raw <> "" && (String.trim raw).[0] = '[' then
                  Ok []
                else Error (path ^ ": unrecoverable trace")
            | Some j -> (
                match Json.of_string (String.sub raw 0 (j + 1) ^ "]") with
                | Ok doc -> events_of doc
                | Error _ -> if j = 0 then Error (path ^ ": unrecoverable trace") else recover (j - 1))
          in
          recover (String.length raw - 1))
