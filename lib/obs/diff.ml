(* Structured deltas between two run manifests (or bench trajectory
   entries), plus the threshold rules that turn a delta into a CI
   verdict.  Works on parsed JSON so it applies to any manifest the
   [Report] module (or the bench harness) writes. *)

(* --- flattening --- *)

(* Numeric leaves of a JSON document as (dotted path, value) pairs.
   Array elements use "[i]" segments.  Booleans and strings are skipped:
   the diff is about quantities. *)
let flatten json =
  let acc = ref [] in
  let rec go path = function
    | Json.Int i -> acc := (path, float_of_int i) :: !acc
    | Json.Float f -> if not (Float.is_nan f) then acc := (path, f) :: !acc
    | Json.Obj kvs ->
        List.iter
          (fun (k, v) -> go (if path = "" then k else path ^ "." ^ k) v)
          kvs
    | Json.List xs ->
        List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" path i) v) xs
    | Json.Null | Json.Bool _ | Json.String _ -> ()
  in
  go "" json;
  List.rev !acc

(* Strip a trailing "[i]" array index so "workers[0].solve_s" and
   "open[3]" match their unindexed names. *)
let strip_index path =
  match String.rindex_opt path '[' with
  | Some i when i > 0 && String.length path > 0 && path.[String.length path - 1] = ']'
    -> String.sub path 0 i
  | _ -> path

(* --- rules --- *)

type direction = Lower_better | Higher_better

type rule = { key : string; max_rel : float; direction : direction }

let rule ?(direction = Lower_better) key max_rel = { key; max_rel; direction }

(* A rule matches a path when its key equals the full path, is a suffix
   of it at a segment boundary, or — with a trailing dot — prefixes the
   path.  Suffix-at-boundary (rather than comparing the key against the
   last '.'-separated segment) lets rule keys that themselves contain
   dots — metric names like "bnb.pruned.lb1_suffix" — gate the nested
   paths they appear under; for dotless keys it is exactly the old
   last-field-name match.  First match in list order wins, so user
   rules prepended to the defaults override them. *)
let rule_matches r path =
  let k = String.length r.key in
  if k > 0 && r.key.[k - 1] = '.' then
    String.length path >= k && String.sub path 0 k = r.key
  else
    let path = strip_index path in
    let n = String.length path in
    r.key = path
    || (n > k && path.[n - k - 1] = '.' && String.sub path (n - k) k = r.key)

let find_rule rules path = List.find_opt (fun r -> rule_matches r path) rules

(* Wall-clock quantities are never gated by default — committed
   baselines travel between machines, so absolute times only inform.
   Deterministic search quantities are gated tightly; the one
   time-derived ratio worth gating (kernel speedup, measured within a
   single process) gets generous headroom. *)
let default_rules =
  [
    rule "cost" 1e-6;
    rule "optimum" 1e-6;
    rule ~direction:Higher_better "lower_bound" 1e-6;
    rule "gap_pct" 0.01;
    rule "expanded" 0.02;
    rule "generated" 0.02;
    rule "pruned" 0.02;
    rule "pruned_33" 0.02;
    rule "max_open" 0.10;
    rule "attribution." 0.02;
    rule ~direction:Higher_better "speedup" 0.5;
  ]

(* Paths that are different on every run by construction. *)
let ignored path =
  path = "created_at_epoch_s"
  || (String.length path >= 5 && String.sub path 0 5 = "meta.")

(* --- diffing --- *)

type verdict = Regressed | Improved | Within | Info

let verdict_to_string = function
  | Regressed -> "regressed"
  | Improved -> "improved"
  | Within -> "within"
  | Info -> "info"

type entry = {
  path : string;
  base : float;
  cur : float;
  delta : float;
  rel : float;  (* (cur - base) / |base|; infinite when base = 0 *)
  verdict : verdict;
  threshold : float option;  (* the matched rule's max_rel, if any *)
}

type t = {
  entries : entry list;  (* path-sorted, both-sided numeric leaves *)
  only_base : string list;
  only_cur : string list;
}

let rel_change ~base ~cur =
  if base = cur then 0.
  else if base = 0. then (if cur > 0. then infinity else neg_infinity)
  else (cur -. base) /. Float.abs base

let classify rules path ~base ~cur =
  let rel = rel_change ~base ~cur in
  match find_rule rules path with
  | None -> (Info, None, rel)
  | Some r ->
      let signed = match r.direction with
        | Lower_better -> rel
        | Higher_better -> -.rel
      in
      let v =
        if signed > r.max_rel then Regressed
        else if signed < -.r.max_rel then Improved
        else Within
      in
      (v, Some r.max_rel, rel)

let diff ?(rules = default_rules) ~base ~cur () =
  let fb = flatten base and fc = flatten cur in
  let tbl = Hashtbl.create 64 in
  List.iter (fun (p, v) -> Hashtbl.replace tbl p v) fb;
  let entries = ref [] and only_cur = ref [] in
  List.iter
    (fun (p, c) ->
      if not (ignored p) then
        match Hashtbl.find_opt tbl p with
        | Some b ->
            Hashtbl.remove tbl p;
            let verdict, threshold, rel = classify rules p ~base:b ~cur:c in
            entries :=
              {
                path = p;
                base = b;
                cur = c;
                delta = c -. b;
                rel;
                verdict;
                threshold;
              }
              :: !entries
        | None -> only_cur := p :: !only_cur)
    fc;
  let only_base =
    Hashtbl.fold (fun p _ acc -> if ignored p then acc else p :: acc) tbl []
  in
  {
    entries = List.sort (fun a b -> compare a.path b.path) !entries;
    only_base = List.sort compare only_base;
    only_cur = List.sort compare (List.rev !only_cur);
  }

let regressions d = List.filter (fun e -> e.verdict = Regressed) d.entries
let has_regression d = regressions d <> []

let changed ?(min_rel = 0.) d =
  List.filter
    (fun e -> e.delta <> 0. && Float.abs e.rel >= min_rel)
    d.entries

(* --- rendering --- *)

let entry_to_json e =
  Json.Obj
    ([
       ("path", Json.String e.path);
       ("base", Json.Float e.base);
       ("current", Json.Float e.cur);
       ("delta", Json.Float e.delta);
       ("rel", Json.Float e.rel);
       ("verdict", Json.String (verdict_to_string e.verdict));
     ]
    @
    match e.threshold with
    | Some t -> [ ("threshold", Json.Float t) ]
    | None -> [])

let to_json d =
  Json.Obj
    [
      ("regressed", Json.Bool (has_regression d));
      ("n_compared", Json.Int (List.length d.entries));
      ( "entries",
        Json.List (List.map entry_to_json (changed d)) );
      ("regressions", Json.List (List.map entry_to_json (regressions d)));
      ("only_base", Json.List (List.map (fun p -> Json.String p) d.only_base));
      ("only_current", Json.List (List.map (fun p -> Json.String p) d.only_cur));
    ]

let pct x =
  if Float.is_finite x then Printf.sprintf "%+.2f%%" (100. *. x) else "new"

let to_markdown ?(title = "Manifest diff") ?(all = false) d =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "## %s\n\n" title;
  let rows = if all then d.entries else changed d in
  if rows = [] then Buffer.add_string buf "No numeric changes.\n"
  else begin
    Buffer.add_string buf "| metric | base | current | change | verdict |\n";
    Buffer.add_string buf "|---|---:|---:|---:|---|\n";
    List.iter
      (fun e ->
        Printf.bprintf buf "| `%s` | %g | %g | %s | %s |\n" e.path e.base
          e.cur (pct e.rel)
          (verdict_to_string e.verdict))
      rows
  end;
  if d.only_base <> [] then
    Printf.bprintf buf "\n%d metric(s) only in base.\n"
      (List.length d.only_base);
  if d.only_cur <> [] then
    Printf.bprintf buf "\n%d metric(s) only in current.\n"
      (List.length d.only_cur);
  Buffer.contents buf

(* --- files and directories --- *)

(* A manifest file holds one JSON document; a BENCH_* trajectory file is
   append-only NDJSON, in which case the latest entry is what a
   comparison means. *)
let load_entry path =
  match Json.read_file path with
  | Ok j -> Ok j
  | Error first_err -> (
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | contents -> (
          let lines =
            String.split_on_char '\n' contents
            |> List.filter (fun l -> String.trim l <> "")
          in
          match List.rev lines with
          | last :: _ -> (
              match Json.of_string last with
              | Ok j -> Ok j
              | Error e ->
                  Error
                    (Printf.sprintf "%s: not JSON (%s) nor NDJSON (%s)" path
                       first_err e))
          | [] -> Error (Printf.sprintf "%s: empty file" path))
      | exception Sys_error e -> Error e)

type file_report = { file : string; result : (t, string) result }

let json_basename f =
  Filename.check_suffix f ".json"

let check_dirs ?(rules = default_rules) ~baseline ~current () =
  match Sys.readdir baseline with
  | exception Sys_error e -> Error e
  | names ->
      let names =
        Array.to_list names |> List.filter json_basename |> List.sort compare
      in
      if names = [] then
        Error (Printf.sprintf "%s: no .json baselines" baseline)
      else
        Ok
          (List.map
             (fun name ->
               let b = Filename.concat baseline name in
               let c = Filename.concat current name in
               let result =
                 if not (Sys.file_exists c) then
                   Error (Printf.sprintf "missing current file %s" c)
                 else
                   match (load_entry b, load_entry c) with
                   | Ok base, Ok cur -> Ok (diff ~rules ~base ~cur ())
                   | Error e, _ | _, Error e -> Error e
               in
               { file = name; result })
             names)

let dirs_regressed reports =
  List.exists
    (fun r ->
      match r.result with Ok d -> has_regression d | Error _ -> true)
    reports
