(** A minimal JSON document builder, serialiser and parser.

    The telemetry subsystem emits Chrome traces, metrics dumps, NDJSON
    progress lines and run manifests; all of them build a {!t} and print
    it.  The parser ({!of_string}) exists for the one place the system
    reads JSON back: anytime-search checkpoints ([Bnb.Checkpoint]),
    which must round-trip through files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val output : out_channel -> t -> unit

val write_file : string -> t -> unit
(** Serialise to [path] followed by a newline (truncating). *)

(** {2 Parsing} *)

val of_string : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed).  Numbers
    without [.], [e] or a leading sign quirk that fit in an OCaml [int]
    become [Int]; all others become [Float] ([1e999] round-trips the
    serialiser's infinity encoding).  [\uXXXX] escapes are decoded to
    UTF-8.  [Error msg] carries the byte offset of the failure. *)

val read_file : string -> (t, string) result
(** {!of_string} over the file's contents; [Error] also covers IO
    failures. *)

(** {2 Accessors}

    Total functions for walking parsed documents; all return [None] on
    a type mismatch or missing key. *)

val member : string -> t -> t option
(** Field lookup in an [Obj] (first binding wins). *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] widens to float. *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
