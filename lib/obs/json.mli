(** A minimal JSON document builder and serialiser.

    The telemetry subsystem emits Chrome traces, metrics dumps, NDJSON
    progress lines and run manifests; all of them build a {!t} and print
    it.  There is deliberately no parser — nothing in this codebase
    reads JSON back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val output : out_channel -> t -> unit

val write_file : string -> t -> unit
(** Serialise to [path] followed by a newline (truncating). *)
