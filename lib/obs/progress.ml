let src = Logs.Src.create "obs.progress" ~doc:"Live branch-and-bound progress"

module Log = (val Logs.src_log src : Logs.LOG)

type sink =
  | Log_lines
  | Ndjson of out_channel
  | Status_line of { tty : bool }

let status_line () =
  (* ANSI rewrites only make sense on an interactive terminal; a
     redirected stderr (CI logs, nohup, | tee) gets one plain line per
     rate-limited tick instead of carriage returns mid-file. *)
  Status_line { tty = Unix.isatty Unix.stderr }

type t = {
  interval_ns : int64;
  next_due : int64 Atomic.t;
  sink : sink;
  out_lock : Mutex.t;
  t0 : int64;
}

let create ?(interval_s = 0.5) ?(sink = Log_lines) () =
  let now = Clock.now_ns () in
  {
    interval_ns = Int64.of_float (interval_s *. 1e9);
    next_due = Atomic.make now;
    sink;
    out_lock = Mutex.create ();
    t0 = now;
  }

let gap_pct ~ub ~lb =
  if Float.is_finite ub && Float.is_finite lb && ub > 0. then
    (ub -. lb) /. ub *. 100.
  else Float.nan

let emit t ~now ~worker ~expanded ~pruned ~open_depth ~ub ~lb =
  let elapsed_s = Clock.ns_to_s (Int64.sub now t.t0) in
  match t.sink with
  | Status_line { tty } ->
      let line =
        Printf.sprintf
          "[w%d] t=%.1fs expanded=%d pruned=%d open=%d ub=%g lb=%g gap=%.2f%%"
          worker elapsed_s expanded pruned open_depth ub lb (gap_pct ~ub ~lb)
      in
      Mutex.lock t.out_lock;
      if tty then output_string stderr ("\r\x1b[2K" ^ line)
      else output_string stderr (line ^ "\n");
      flush stderr;
      Mutex.unlock t.out_lock
  | Log_lines ->
      Log.info (fun m ->
          m
            "[w%d] t=%.1fs expanded=%d pruned=%d open=%d ub=%g lb=%g \
             gap=%.2f%%"
            worker elapsed_s expanded pruned open_depth ub lb
            (gap_pct ~ub ~lb))
  | Ndjson oc ->
      let line =
        Json.to_string
          (Json.Obj
             [
               ("t_s", Json.Float elapsed_s);
               ("worker", Json.Int worker);
               ("expanded", Json.Int expanded);
               ("pruned", Json.Int pruned);
               ("open", Json.Int open_depth);
               ("ub", Json.Float ub);
               ("lb", Json.Float lb);
               ("gap_pct", Json.Float (gap_pct ~ub ~lb));
             ])
      in
      Mutex.lock t.out_lock;
      output_string oc line;
      output_char oc '\n';
      flush oc;
      Mutex.unlock t.out_lock

let sample t ~worker ~expanded ~pruned ~open_depth ~ub ~lb =
  let now = Clock.now_ns () in
  let due = Atomic.get t.next_due in
  (* One clock read and one atomic load per call; the CAS makes sure a
     single worker wins each tick, so samplers can sit in every
     worker's inner loop. *)
  if now >= due
     && Atomic.compare_and_set t.next_due due (Int64.add now t.interval_ns)
  then emit t ~now ~worker ~expanded ~pruned ~open_depth ~ub ~lb
