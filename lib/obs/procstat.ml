(* One cheap snapshot of this process's memory pressure: GC counters
   from [Gc.quick_stat] (no heap walk) plus resident-set bytes from
   /proc/self/statm.  Workers piggyback a sample on every heartbeat so
   the coordinator can publish per-worker [proc.*] gauges; the telemetry
   listener refreshes its own sample on each /metrics scrape. *)

type sample = {
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  rss_bytes : int;  (* 0 when /proc is unavailable (non-Linux) *)
}

let page_size = 4096

(* /proc/self/statm: "size resident shared text lib data dt", in pages. *)
let rss_bytes () =
  match In_channel.with_open_text "/proc/self/statm" In_channel.input_all with
  | exception _ -> 0
  | line -> (
      match String.split_on_char ' ' (String.trim line) with
      | _ :: resident :: _ -> (
          match int_of_string_opt resident with
          | Some pages when pages >= 0 -> pages * page_size
          | _ -> 0)
      | _ -> 0)

let sample () =
  let q = Gc.quick_stat () in
  {
    minor_collections = q.Gc.minor_collections;
    major_collections = q.Gc.major_collections;
    compactions = q.Gc.compactions;
    heap_words = q.Gc.heap_words;
    rss_bytes = rss_bytes ();
  }

let to_json s =
  Json.Obj
    [
      ("minor_collections", Json.Int s.minor_collections);
      ("major_collections", Json.Int s.major_collections);
      ("compactions", Json.Int s.compactions);
      ("heap_words", Json.Int s.heap_words);
      ("rss_bytes", Json.Int s.rss_bytes);
    ]

let of_json j =
  let int k =
    match Option.bind (Json.member k j) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "proc sample: missing int field %S" k)
  in
  match (int "minor_collections", int "major_collections", int "compactions",
         int "heap_words", int "rss_bytes")
  with
  | Ok minor_collections, Ok major_collections, Ok compactions, Ok heap_words,
    Ok rss_bytes ->
      Ok { minor_collections; major_collections; compactions; heap_words;
           rss_bytes }
  | Error e, _, _, _, _
  | _, Error e, _, _, _
  | _, _, Error e, _, _
  | _, _, _, Error e, _
  | _, _, _, _, Error e ->
      Error e

let set_gauges ?registry ~prefix s =
  let set name v =
    Metrics.set (Metrics.gauge ?registry (prefix ^ name)) (float_of_int v)
  in
  set ".gc.minor_collections" s.minor_collections;
  set ".gc.major_collections" s.major_collections;
  set ".gc.compactions" s.compactions;
  set ".gc.heap_words" s.heap_words;
  set ".rss_bytes" s.rss_bytes
