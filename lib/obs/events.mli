(** Typed telemetry events for the live recorder ({!Recorder}).

    Where {!Metrics} answers "how much, in aggregate", an event answers
    "what just happened": an incumbent improved, a compact-set block
    started or finished, a checkpoint hit disk, a budget ticked or
    tripped, a worker reported its counters.  Events serialise to flat
    one-line JSON objects with a ["kind"] discriminant — the format both
    the [/events] endpoint and the flight-recorder dump emit, and the
    one [phylo top] reads back. *)

type kind =
  | Incumbent of { cost : float }
      (** a strictly better complete tree was adopted *)
  | Block_start of { id : int; size : int }
      (** a compact-set block's exact solve began *)
  | Block_finish of { id : int; size : int; solve_s : float; status : string }
      (** ... and ended, with its wall time and budget status *)
  | Run_start of { n : int; n_blocks : int }
      (** a pipeline run began: problem size and block count *)
  | Checkpoint_write of { path : string }
  | Budget_tick of { nodes : int }
      (** rate-limited budget progress: expansions charged so far *)
  | Budget_stop of { status : string }  (** a budget tripped *)
  | Heartbeat of {
      worker : int;
      expanded : int;
      pruned : int;
      open_nodes : int;
      ub : float;
      lb : float;
    }  (** rate-limited per-worker liveness + search counters *)

val kind_name : kind -> string
(** The ["kind"] discriminant string. *)

val kind_fields : kind -> (string * Json.t) list
(** Payload fields (without the envelope). *)

val to_json : seq:int -> t_s:float -> domain:int -> kind -> Json.t
(** Full event object: [seq], [t_s], [domain], [kind] + payload. *)

val of_json : Json.t -> kind option
(** Inverse of {!to_json} on the payload; [None] on unknown kinds.
    Missing numeric fields parse as [0]/[nan] rather than failing. *)
