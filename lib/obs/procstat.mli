(** Per-process GC and memory samples.

    A {!sample} is one cheap snapshot of this process's memory
    pressure: allocation/collection counters from [Gc.quick_stat] (no
    heap walk, safe on a heartbeat cadence) plus resident-set bytes
    read from [/proc/self/statm].  Samples serialise to JSON so remote
    workers can ship them on wire heartbeats, and {!set_gauges}
    publishes one into a {!Metrics} registry under a caller-chosen
    prefix — [proc] for the local process, [proc.worker<N>] for a
    worker the coordinator is relaying. *)

type sample = {
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;  (** total heap size, in words *)
  rss_bytes : int;
      (** resident set size; [0] when [/proc/self/statm] is
          unavailable (non-Linux hosts) *)
}

val sample : unit -> sample

val to_json : sample -> Json.t
val of_json : Json.t -> (sample, string) result

val set_gauges : ?registry:Metrics.registry -> prefix:string -> sample -> unit
(** Publish the sample as gauges [<prefix>.gc.minor_collections],
    [<prefix>.gc.major_collections], [<prefix>.gc.compactions],
    [<prefix>.gc.heap_words] and [<prefix>.rss_bytes] (registry
    default: {!Metrics.default}). *)
