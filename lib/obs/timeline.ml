(* The merged-trace report behind [phylo obs timeline]: fold a Chrome
   trace (as loaded by [Span.load_trace]) into per-job and per-request
   critical-path rows.

   The span vocabulary it understands is the one the executor layer
   records:

   - [job.queue]  — submit to dispatch, on the coordinator (args: job);
   - [job.rpc]    — dispatch to result receipt for a remote job, on the
                    coordinator (args: job, worker);
   - [job.solve]  — the solve itself, on whichever process ran it
                    (args: job, cached); merged worker solves land on
                    that worker's pid track;
   - [request]    — one [phylo serve] request (args: request_id).

   Network time is attributed by subtraction: rpc duration minus the
   remote solve's duration — everything the coordinator waited for
   beyond the solve itself (frame encode/decode, TCP transit, the
   worker's select loop).  Sub-microsecond clock-alignment error makes
   that a lower bound, so it is clamped at zero. *)

type job_row = {
  job : int;
  trace : string option;
  solve_pid : int;  (* process track the solve span landed on *)
  queue_s : float;
  net_s : float;
  solve_s : float;
  cached : bool;
  start_s : float;  (* earliest span start, seconds from trace origin *)
  finish_s : float;  (* latest span end *)
}

type t = {
  jobs : job_row list;  (* by job id *)
  requests : (string * float) list;  (* request id, duration (s) *)
  tracks : (int * string) list;  (* pid, label (from process_name) *)
  span_s : float;  (* envelope: latest span end - earliest start *)
  events : int;  (* "X" events folded in *)
}

(* --- picking events apart --- *)

let str k j = Option.bind (Json.member k j) Json.to_string_opt
let num k j = Option.bind (Json.member k j) Json.to_float_opt
let arg k j = Option.bind (Json.member "args" j) (Json.member k)

let is_phase p j =
  match str "ph" j with Some x -> x = p | None -> p = "X"

(* ts/dur are microseconds in the Chrome format. *)
let interval j =
  match num "ts" j with
  | None -> None
  | Some ts ->
      let dur = Option.value ~default:0. (num "dur" j) in
      Some (ts /. 1e6, dur /. 1e6)

let of_events events =
  let xs = List.filter (is_phase "X") events in
  let tracks =
    List.filter_map
      (fun j ->
        if is_phase "M" j && str "name" j = Some "process_name" then
          match
            (Option.bind (Json.member "pid" j) Json.to_int_opt,
             Option.bind (arg "name" j) Json.to_string_opt)
          with
          | Some pid, Some label -> Some (pid, label)
          | _ -> None
        else None)
      events
    |> List.sort_uniq compare
  in
  let jobs : (int, job_row) Hashtbl.t = Hashtbl.create 16 in
  let touch id =
    match Hashtbl.find_opt jobs id with
    | Some r -> r
    | None ->
        let r =
          {
            job = id;
            trace = None;
            solve_pid = 0;
            queue_s = 0.;
            net_s = 0.;
            solve_s = 0.;
            cached = false;
            start_s = Float.infinity;
            finish_s = Float.neg_infinity;
          }
        in
        Hashtbl.replace jobs id r;
        r
  in
  (* rpc durations per job, so net time can be derived after the pass
     (the matching solve span may arrive later in the file). *)
  let rpc : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let requests = ref [] in
  let lo = ref Float.infinity and hi = ref Float.neg_infinity in
  List.iter
    (fun j ->
      match (str "name" j, interval j) with
      | None, _ | _, None -> ()
      | Some name, Some (start_s, dur_s) ->
          let finish_s = start_s +. dur_s in
          lo := Float.min !lo start_s;
          hi := Float.max !hi finish_s;
          let job_id = Option.bind (arg "job" j) Json.to_int_opt in
          let trace = Option.bind (arg "trace" j) Json.to_string_opt in
          let update id f =
            let r = touch id in
            let r = f r in
            Hashtbl.replace jobs id
              {
                r with
                trace = (match r.trace with Some _ -> r.trace | None -> trace);
                start_s = Float.min r.start_s start_s;
                finish_s = Float.max r.finish_s finish_s;
              }
          in
          (match (name, job_id) with
          | "job.queue", Some id ->
              update id (fun r -> { r with queue_s = r.queue_s +. dur_s })
          | "job.rpc", Some id ->
              Hashtbl.replace rpc id
                (dur_s
                +. Option.value ~default:0. (Hashtbl.find_opt rpc id));
              update id Fun.id
          | "job.solve", Some id ->
              let pid =
                Option.value ~default:1
                  (Option.bind (Json.member "pid" j) Json.to_int_opt)
              in
              let cached =
                match arg "cached" j with
                | Some (Json.Bool b) -> b
                | _ -> false
              in
              update id (fun r ->
                  { r with solve_s = r.solve_s +. dur_s; solve_pid = pid;
                    cached = r.cached || cached })
          | "request", _ -> (
              match Option.bind (arg "request_id" j) Json.to_string_opt with
              | Some rid -> requests := (rid, dur_s) :: !requests
              | None -> ())
          | _ -> ()))
    xs;
  let rows =
    Hashtbl.fold
      (fun id r acc ->
        let net_s =
          match Hashtbl.find_opt rpc id with
          | Some rpc_s -> Float.max 0. (rpc_s -. r.solve_s)
          | None -> 0.
        in
        { r with net_s } :: acc)
      jobs []
    |> List.sort (fun a b -> compare a.job b.job)
  in
  {
    jobs = rows;
    requests = List.rev !requests;
    tracks;
    span_s = (if !hi > !lo then !hi -. !lo else 0.);
    events = List.length xs;
  }

let track_label t pid =
  match List.assoc_opt pid t.tracks with
  | Some l -> l
  | None -> if pid = Span.self_pid then "coordinator" else Printf.sprintf "pid %d" pid

let totals t =
  List.fold_left
    (fun (q, n, s) r -> (q +. r.queue_s, n +. r.net_s, s +. r.solve_s))
    (0., 0., 0.) t.jobs

let to_json t =
  let job_json r =
    Json.Obj
      ([ ("job", Json.Int r.job) ]
      @ (match r.trace with
        | Some tr -> [ ("trace", Json.String tr) ]
        | None -> [])
      @ [
          ("track", Json.String (track_label t r.solve_pid));
          ("queue_s", Json.Float r.queue_s);
          ("net_s", Json.Float r.net_s);
          ("solve_s", Json.Float r.solve_s);
          ("cached", Json.Bool r.cached);
          ("start_s", Json.Float r.start_s);
          ("finish_s", Json.Float r.finish_s);
        ])
  in
  let queue_s, net_s, solve_s = totals t in
  Json.Obj
    [
      ("events", Json.Int t.events);
      ("span_s", Json.Float t.span_s);
      ( "tracks",
        Json.List
          (List.map
             (fun (pid, label) ->
               Json.Obj [ ("pid", Json.Int pid); ("name", Json.String label) ])
             t.tracks) );
      ("jobs", Json.List (List.map job_json t.jobs));
      ( "requests",
        Json.List
          (List.map
             (fun (rid, dur_s) ->
               Json.Obj
                 [
                   ("request_id", Json.String rid);
                   ("duration_s", Json.Float dur_s);
                 ])
             t.requests) );
      ( "totals",
        Json.Obj
          [
            ("queue_s", Json.Float queue_s);
            ("net_s", Json.Float net_s);
            ("solve_s", Json.Float solve_s);
          ] );
    ]

let render t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "timeline: %d spans over %.3fs" t.events t.span_s;
  List.iter
    (fun (pid, label) ->
      let spans =
        List.length (List.filter (fun r -> r.solve_pid = pid) t.jobs)
      in
      line "track pid=%d %s (%d solve%s)" pid label spans
        (if spans = 1 then "" else "s"))
    t.tracks;
  if t.jobs <> [] then begin
    line "%-5s %-14s %10s %10s %10s %7s  %s" "job" "track" "queue_s" "net_s"
      "solve_s" "cached" "trace";
    List.iter
      (fun r ->
        line "%-5d %-14s %10.4f %10.4f %10.4f %7s  %s" r.job
          (track_label t r.solve_pid)
          r.queue_s r.net_s r.solve_s
          (if r.cached then "yes" else "no")
          (Option.value ~default:"-" r.trace))
      t.jobs;
    let queue_s, net_s, solve_s = totals t in
    line "total queue %.4fs  net %.4fs  solve %.4fs  (critical span %.4fs)"
      queue_s net_s solve_s t.span_s
  end;
  List.iter
    (fun (rid, dur_s) -> line "request %s: %.4fs" rid dur_s)
    t.requests;
  Buffer.contents b

(* The reconciliation gate behind [obs timeline --manifest]: every
   per-job account (queue + net + solve) must fit inside the job's own
   observed lifetime, and the whole trace envelope inside the
   manifest's wall clock — with [tol] slack for flush timing and the
   sub-heartbeat clock-alignment error. *)
let reconcile ?(tol = 0.25) t ~wall_s =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let slack = (tol *. Float.max wall_s 0.01) +. 0.05 in
  if t.events = 0 then err "trace has no spans";
  if t.span_s > wall_s +. slack then
    err "trace envelope %.4fs exceeds manifest wall %.4fs" t.span_s wall_s;
  List.iter
    (fun r ->
      let accounted = r.queue_s +. r.net_s +. r.solve_s in
      let lifetime = r.finish_s -. r.start_s in
      if accounted > lifetime +. slack then
        err "job %d accounts %.4fs over its %.4fs lifetime" r.job accounted
          lifetime;
      if r.finish_s > wall_s +. slack then
        err "job %d finishes at %.4fs, past wall %.4fs" r.job r.finish_s
          wall_s)
    t.jobs;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
