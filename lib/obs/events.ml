(* Typed telemetry events.  One constructor per thing an operator wants
   to see happen *while* a solve runs; the recorder stamps each with a
   global sequence number, a relative timestamp and the writer's domain
   id.  Serialisation is NDJSON-friendly: one flat object per event,
   with a "kind" discriminant, so `/events` consumers and the flight
   recorder share one format. *)

type kind =
  | Incumbent of { cost : float }
  | Block_start of { id : int; size : int }
  | Block_finish of { id : int; size : int; solve_s : float; status : string }
  | Run_start of { n : int; n_blocks : int }
  | Checkpoint_write of { path : string }
  | Budget_tick of { nodes : int }
  | Budget_stop of { status : string }
  | Heartbeat of {
      worker : int;
      expanded : int;
      pruned : int;
      open_nodes : int;
      ub : float;
      lb : float;
    }

let kind_name = function
  | Incumbent _ -> "incumbent"
  | Block_start _ -> "block_start"
  | Block_finish _ -> "block_finish"
  | Run_start _ -> "run_start"
  | Checkpoint_write _ -> "checkpoint_write"
  | Budget_tick _ -> "budget_tick"
  | Budget_stop _ -> "budget_stop"
  | Heartbeat _ -> "heartbeat"

(* Payload fields only; the envelope (seq, t_s, domain, kind) is the
   recorder's business. *)
let kind_fields = function
  | Incumbent { cost } -> [ ("cost", Json.Float cost) ]
  | Block_start { id; size } ->
      [ ("id", Json.Int id); ("size", Json.Int size) ]
  | Block_finish { id; size; solve_s; status } ->
      [
        ("id", Json.Int id);
        ("size", Json.Int size);
        ("solve_s", Json.Float solve_s);
        ("status", Json.String status);
      ]
  | Run_start { n; n_blocks } ->
      [ ("n", Json.Int n); ("n_blocks", Json.Int n_blocks) ]
  | Checkpoint_write { path } -> [ ("path", Json.String path) ]
  | Budget_tick { nodes } -> [ ("nodes", Json.Int nodes) ]
  | Budget_stop { status } -> [ ("status", Json.String status) ]
  | Heartbeat { worker; expanded; pruned; open_nodes; ub; lb } ->
      [
        ("worker", Json.Int worker);
        ("expanded", Json.Int expanded);
        ("pruned", Json.Int pruned);
        ("open", Json.Int open_nodes);
        ("ub", Json.Float ub);
        ("lb", Json.Float lb);
      ]

let to_json ~seq ~t_s ~domain kind =
  Json.Obj
    (("seq", Json.Int seq)
    :: ("t_s", Json.Float t_s)
    :: ("domain", Json.Int domain)
    :: ("kind", Json.String (kind_name kind))
    :: kind_fields kind)

(* Parsing, for `phylo top` reading `/events` NDJSON back.  Missing
   numeric fields default to 0 / NaN rather than failing: a newer
   server must stay readable by an older top. *)
let of_json j =
  let int k = Option.value ~default:0 (Option.bind (Json.member k j) Json.to_int_opt) in
  let flt k =
    Option.value ~default:Float.nan
      (Option.bind (Json.member k j) Json.to_float_opt)
  in
  let str k =
    Option.value ~default:""
      (Option.bind (Json.member k j) Json.to_string_opt)
  in
  match Option.bind (Json.member "kind" j) Json.to_string_opt with
  | Some "incumbent" -> Some (Incumbent { cost = flt "cost" })
  | Some "block_start" -> Some (Block_start { id = int "id"; size = int "size" })
  | Some "block_finish" ->
      Some
        (Block_finish
           {
             id = int "id";
             size = int "size";
             solve_s = flt "solve_s";
             status = str "status";
           })
  | Some "run_start" ->
      Some (Run_start { n = int "n"; n_blocks = int "n_blocks" })
  | Some "checkpoint_write" -> Some (Checkpoint_write { path = str "path" })
  | Some "budget_tick" -> Some (Budget_tick { nodes = int "nodes" })
  | Some "budget_stop" -> Some (Budget_stop { status = str "status" })
  | Some "heartbeat" ->
      Some
        (Heartbeat
           {
             worker = int "worker";
             expanded = int "expanded";
             pruned = int "pruned";
             open_nodes = int "open";
             ub = flt "ub";
             lb = flt "lb";
           })
  | Some _ | None -> None
