(* Counters, gauges and log-scale histograms, cheap enough for the
   branch-and-bound inner loop.  Mutation never takes a lock: every
   metric is sharded into [n_shards] atomic cells and a writer touches
   only the cell indexed by its domain id, so parallel workers do not
   contend.  Readers merge the shards. *)

let n_shards = 16 (* power of two *)

let shard () = (Domain.self () :> int) land (n_shards - 1)

type counter = { c_name : string; cells : int Atomic.t array }
type gauge = { g_name : string; cell : float Atomic.t }

let n_buckets = 32
(* Bucket 0 holds values < 1; bucket i >= 1 holds [2^(i-1), 2^i); the
   last bucket additionally collects the overflow.  Fixed bounds keep
   merging trivial: same-index buckets add. *)

type histogram = {
  h_name : string;
  buckets : int Atomic.t array array;  (* shard -> bucket -> count *)
  sums : float Atomic.t array;  (* shard -> sum of observations *)
}

type metric = C of counter | G of gauge | H of histogram

type registry = {
  lock : Mutex.t;
  tbl : (string, metric) Hashtbl.t;
}

let create_registry () = { lock = Mutex.create (); tbl = Hashtbl.create 64 }
let default = create_registry ()

let register registry name build inspect kind =
  Mutex.lock registry.lock;
  let m =
    match Hashtbl.find_opt registry.tbl name with
    | Some m -> m
    | None ->
        let m = build () in
        Hashtbl.add registry.tbl name m;
        m
  in
  Mutex.unlock registry.lock;
  match inspect m with
  | Some x -> x
  | None ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %S already registered as a %s" name kind)

let counter ?(registry = default) name =
  register registry name
    (fun () ->
      C { c_name = name; cells = Array.init n_shards (fun _ -> Atomic.make 0) })
    (function C c -> Some c | _ -> None)
    "non-counter"

let gauge ?(registry = default) name =
  register registry name
    (fun () -> G { g_name = name; cell = Atomic.make Float.nan })
    (function G g -> Some g | _ -> None)
    "non-gauge"

let histogram ?(registry = default) name =
  register registry name
    (fun () ->
      H
        {
          h_name = name;
          buckets =
            Array.init n_shards (fun _ ->
                Array.init n_buckets (fun _ -> Atomic.make 0));
          sums = Array.init n_shards (fun _ -> Atomic.make 0.);
        })
    (function H h -> Some h | _ -> None)
    "non-histogram"

let add c n = ignore (Atomic.fetch_and_add c.cells.(shard ()) n)
let incr c = add c 1
let counter_value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.cells

let set g x = Atomic.set g.cell x
let gauge_value g = Atomic.get g.cell

let bucket_of v =
  if not (v >= 1.) then 0 (* also catches negatives and NaN *)
  else
    let _, e = Float.frexp v in
    Int.min (n_buckets - 1) e

let bucket_upper i = Float.ldexp 1. i (* 2^i, the exclusive upper bound *)

let observe h v =
  let s = shard () in
  ignore (Atomic.fetch_and_add h.buckets.(s).(bucket_of v) 1);
  (* CAS loop: several domains can share a shard if there are more than
     [n_shards] of them. *)
  let sum = h.sums.(s) in
  let rec bump () =
    let old = Atomic.get sum in
    if not (Atomic.compare_and_set sum old (old +. v)) then bump ()
  in
  bump ()

let bucket_bounds i =
  if i <= 0 then (0., 1.) else (Float.ldexp 1. (i - 1), Float.ldexp 1. i)

type histogram_snapshot = { counts : int array; count : int; sum : float }

(* Rank-based quantile with linear interpolation inside the matched
   bucket — coarse (the buckets are powers of two) but monotone, and
   exact for single-bucket data degenerates to the bucket midpoint
   region.  [q] is clamped to [0, 1]; an empty histogram has no
   quantiles, so the result is NaN. *)
let histogram_quantile s q =
  if s.count = 0 then Float.nan
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let target = q *. float_of_int s.count in
    let rec find i seen =
      if i >= n_buckets - 1 then i
      else
        let seen' = seen + s.counts.(i) in
        if float_of_int seen' >= target && s.counts.(i) > 0 then i
        else if seen' = s.count then i
        else find (i + 1) seen'
    in
    let rec seen_before i j acc =
      if j >= i then acc else seen_before i (j + 1) (acc + s.counts.(j))
    in
    let i = find 0 0 in
    let lo, hi = bucket_bounds i in
    let before = seen_before i 0 0 in
    let inside = s.counts.(i) in
    if inside = 0 then lo
    else
      let frac =
        Float.min 1.
          (Float.max 0.
             ((target -. float_of_int before) /. float_of_int inside))
      in
      lo +. (frac *. (hi -. lo))
  end

let histogram_value h =
  let counts = Array.make n_buckets 0 in
  Array.iter
    (Array.iteri (fun i a -> counts.(i) <- counts.(i) + Atomic.get a))
    h.buckets;
  {
    counts;
    count = Array.fold_left ( + ) 0 counts;
    sum = Array.fold_left (fun acc a -> acc +. Atomic.get a) 0. h.sums;
  }

let metric_to_json = function
  | C c -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int (counter_value c)) ]
  | G g ->
      (* A gauge is NaN until its first [set]; NaN is not JSON, so unset
         gauges dump as null. *)
      let v = Atomic.get g.cell in
      let value = if Float.is_nan v then Json.Null else Json.Float v in
      Json.Obj [ ("type", Json.String "gauge"); ("value", value) ]
  | H h ->
      let s = histogram_value h in
      let buckets =
        Array.to_list s.counts
        |> List.mapi (fun i n -> (i, n))
        |> List.filter (fun (_, n) -> n > 0)
        |> List.map (fun (i, n) ->
               Json.Obj [ ("le", Json.Float (bucket_upper i)); ("count", Json.Int n) ])
      in
      let quantile q =
        let v = histogram_quantile s q in
        if Float.is_nan v then Json.Null else Json.Float v
      in
      Json.Obj
        [
          ("type", Json.String "histogram");
          ("count", Json.Int s.count);
          ("sum", Json.Float s.sum);
          ("p50", quantile 0.50);
          ("p95", quantile 0.95);
          ("p99", quantile 0.99);
          ("buckets", Json.List buckets);
        ]

let dump ?(registry = default) () =
  Mutex.lock registry.lock;
  let entries =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry.tbl []
  in
  Mutex.unlock registry.lock;
  Json.Obj
    (List.sort (fun (a, _) (b, _) -> String.compare a b) entries
    |> List.map (fun (name, m) -> (name, metric_to_json m)))

let write_file ?registry path = Json.write_file path (dump ?registry ())

(* --- Prometheus text exposition (version 0.0.4) ---

   Rendered from the same registry `dump` reads, deterministically: one
   block per metric, sorted by exposition name then registry name, so
   two scrapes of identical state are byte-identical whatever order
   shards or registrations happened in. *)

let prometheus_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || c = '_' || c = ':'
        || (i > 0 && c >= '0' && c <= '9')
      in
      if not ok then Bytes.set b i '_')
    b;
  Bytes.to_string b

let prometheus_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let metric_to_prometheus buf pname m =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  match m with
  | C c ->
      line "# TYPE %s counter\n" pname;
      line "%s %d\n" pname (counter_value c)
  | G g ->
      line "# TYPE %s gauge\n" pname;
      line "%s %s\n" pname (prometheus_float (Atomic.get g.cell))
  | H h ->
      let s = histogram_value h in
      line "# TYPE %s histogram\n" pname;
      let cum = ref 0 in
      for i = 0 to n_buckets - 2 do
        cum := !cum + s.counts.(i);
        line "%s_bucket{le=\"%s\"} %d\n" pname
          (prometheus_float (bucket_upper i))
          !cum
      done;
      (* The last bucket also collects the overflow, so its upper bound
         is +Inf by construction. *)
      line "%s_bucket{le=\"+Inf\"} %d\n" pname s.count;
      line "%s_sum %s\n" pname (prometheus_float s.sum);
      line "%s_count %d\n" pname s.count

let to_prometheus ?(registry = default) () =
  Mutex.lock registry.lock;
  let entries =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry.tbl []
  in
  Mutex.unlock registry.lock;
  let entries =
    List.sort
      (fun (a, _) (b, _) ->
        match String.compare (prometheus_name a) (prometheus_name b) with
        | 0 -> String.compare a b
        | c -> c)
      entries
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, m) -> metric_to_prometheus buf (prometheus_name name) m)
    entries;
  Buffer.contents buf

let reset ?(registry = default) () =
  Mutex.lock registry.lock;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Array.iter (fun a -> Atomic.set a 0) c.cells
      | G g -> Atomic.set g.cell Float.nan
      | H h ->
          Array.iter (Array.iter (fun a -> Atomic.set a 0)) h.buckets;
          Array.iter (fun a -> Atomic.set a 0.) h.sums)
    registry.tbl;
  Mutex.unlock registry.lock
