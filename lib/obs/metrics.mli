(** A metrics registry: counters, gauges and fixed-log-bucket
    histograms.

    Designed for the branch-and-bound inner loop: mutation is lock-free
    (one [Atomic.fetch_and_add] on a shard indexed by the writer's
    domain id) and domain-safe; shards are merged on read.  Metrics are
    registered by name — registering the same name twice returns the
    same metric, so instrumentation sites can look metrics up lazily. *)

type registry

val create_registry : unit -> registry

val default : registry
(** The process-wide registry used when [?registry] is omitted — this is
    what [--metrics FILE] dumps. *)

(** {1 Counters} *)

type counter

val counter : ?registry:registry -> string -> counter
(** @raise Invalid_argument if [name] is registered as another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : ?registry:registry -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float
(** NaN until the first {!set}. *)

(** {1 Histograms} *)

type histogram

val histogram : ?registry:registry -> string -> histogram

val observe : histogram -> float -> unit
(** Bucket boundaries are fixed powers of two: bucket 0 counts values
    below 1, bucket [i >= 1] counts [[2^(i-1), 2^i)], and the last
    bucket collects the overflow; same-index buckets therefore merge by
    addition across shards, workers and processes. *)

val n_buckets : int
val bucket_of : float -> int
val bucket_upper : int -> float
(** Exclusive upper bound of bucket [i] ([2^i]). *)

val bucket_bounds : int -> float * float
(** [(inclusive lower, exclusive upper)] bounds of bucket [i]: bucket 0
    is [(0, 1)], bucket [i >= 1] is [(2^(i-1), 2^i)]. *)

type histogram_snapshot = { counts : int array; count : int; sum : float }

val histogram_value : histogram -> histogram_snapshot
(** Merged over shards. *)

val histogram_quantile : histogram_snapshot -> float -> float
(** [histogram_quantile s q] estimates the [q]-quantile ([q] clamped to
    [[0, 1]]) by rank, interpolating linearly inside the matched
    bucket.  Resolution is the bucket width (powers of two).  NaN when
    the histogram is empty.  Dumps include p50/p95/p99 computed this
    way. *)

(** {1 Export} *)

val dump : ?registry:registry -> unit -> Json.t
(** All metrics (merged), as a name-sorted JSON object.  The ordering
    (by metric name) is deterministic across runs and shard
    interleavings, so manifests embedding a dump diff cleanly. *)

val prometheus_name : string -> string
(** Sanitise a registry name for the exposition format (every character
    outside [[a-zA-Z0-9_:]] becomes ['_']; dots in particular). *)

val to_prometheus : ?registry:registry -> unit -> string
(** The registry in Prometheus text exposition format (version 0.0.4):
    counters and gauges as single samples, histograms as cumulative
    [_bucket{le="..."}] samples over the fixed power-of-two bounds plus
    [_sum]/[_count].  Metrics are sorted by exposition name, so equal
    registry states render byte-identically — what [/metrics] serves. *)

val write_file : ?registry:registry -> string -> unit
val reset : ?registry:registry -> unit -> unit
