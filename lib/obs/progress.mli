(** Live progress reporting for long branch-and-bound solves.

    A sampler ticker: solvers call {!sample} from their inner loops with
    the current counters; at most one sample per [interval_s] is
    emitted, either as a human-readable [Logs] line (level [info], source
    ["obs.progress"]) or as one NDJSON object per line.  [sample] is
    thread-safe and costs one monotonic-clock read plus one atomic load
    when the tick is not due. *)

val src : Logs.src

type sink =
  | Log_lines  (** emit via [Logs] on {!src} *)
  | Ndjson of out_channel  (** one JSON object per line *)
  | Status_line of { tty : bool }
      (** one status line on stderr: with [tty = true] the line is
          rewritten in place (carriage return + erase-line), with
          [tty = false] each rate-limited tick emits one plain line —
          no ANSI escapes ever reach a redirected stream *)

val status_line : unit -> sink
(** {!Status_line} with [tty] probed from the real stderr
    ([Unix.isatty]). *)

type t

val create : ?interval_s:float -> ?sink:sink -> unit -> t
(** [interval_s] defaults to 0.5 s. *)

val sample :
  t ->
  worker:int ->
  expanded:int ->
  pruned:int ->
  open_depth:int ->
  ub:float ->
  lb:float ->
  unit
(** Report the caller's current state; rate-limited internally.  [ub]
    and [lb] may be infinite (reported gap is NaN). *)

val gap_pct : ub:float -> lb:float -> float
(** Relative optimality gap in percent, NaN when undefined. *)
