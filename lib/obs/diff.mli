(** Structured deltas between run manifests, and the threshold rules
    that turn a delta into a CI verdict.

    A manifest (or a bench trajectory entry) is flattened to its numeric
    leaves as dotted paths — [stats.expanded], [attribution.reasons.
    lb1_suffix.total], [blocks[2].solve_s] — then two documents are
    joined path-wise.  Each joined pair is classified against the first
    matching {!rule}: over threshold in the bad direction is
    [Regressed], over threshold in the good direction is [Improved],
    under is [Within]; paths with no rule are [Info] (reported, never
    gating).  Wall-clock paths carry no default rule, so committed
    baselines compare safely across machines. *)

(** {1 Rules} *)

type direction =
  | Lower_better  (** growth beyond threshold regresses (nodes, cost) *)
  | Higher_better  (** shrinkage beyond threshold regresses (speedup) *)

type rule = { key : string; max_rel : float; direction : direction }

val rule : ?direction:direction -> string -> float -> rule
(** [rule key max_rel] gates relative change at [max_rel] (e.g. [0.02]
    = ±2%).  [key] matches a path when it equals the full dotted path,
    is a suffix of it at a ['.'] segment boundary (array indices
    stripped) — so a dotless key matches a path's last field name, and
    a dotted key like ["bnb.pruned.lb1_suffix"] matches wherever that
    metric nests — or, when it ends with ['.'], is a prefix of the
    path.  First matching rule in list order wins. *)

val default_rules : rule list
(** Gates deterministic search quantities (cost exactly; expanded /
    generated / pruned / attribution at 2%; speedup at 50%,
    higher-better) and leaves times ungated. *)

(** {1 Diffing} *)

type verdict = Regressed | Improved | Within | Info

val verdict_to_string : verdict -> string

type entry = {
  path : string;
  base : float;
  cur : float;
  delta : float;
  rel : float;  (** [(cur - base) / |base|]; infinite when [base = 0] *)
  verdict : verdict;
  threshold : float option;
}

type t = {
  entries : entry list;  (** path-sorted paths present on both sides *)
  only_base : string list;
  only_cur : string list;
}

val flatten : Json.t -> (string * float) list
(** Numeric leaves as (dotted path, value), document order. *)

val diff : ?rules:rule list -> base:Json.t -> cur:Json.t -> unit -> t

val regressions : t -> entry list
val has_regression : t -> bool

val changed : ?min_rel:float -> t -> entry list
(** Entries whose value moved (at least [min_rel] relatively). *)

val to_json : t -> Json.t
val to_markdown : ?title:string -> ?all:bool -> t -> string

(** {1 Files and directories} *)

val load_entry : string -> (Json.t, string) result
(** Load a manifest file; if the file is not a single JSON document,
    fall back to its last non-empty line (NDJSON trajectory — the
    latest entry is what a comparison means). *)

type file_report = { file : string; result : (t, string) result }

val check_dirs :
  ?rules:rule list -> baseline:string -> current:string -> unit ->
  (file_report list, string) result
(** Compare every [*.json] in [baseline] against the same basename in
    [current].  A missing or unparseable current file is itself a
    failure. *)

val dirs_regressed : file_report list -> bool
(** True when any file regressed or failed to compare. *)
