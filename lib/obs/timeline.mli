(** Per-job / per-request critical-path rows out of a merged Chrome
    trace — the model behind [phylo obs timeline].

    {!of_events} folds the event list {!Span.load_trace} returns into
    one {!t}: a row per executor job (queue wait, network time, solve
    time, cache provenance, and which process track the solve ran on),
    a row per [phylo serve] request, the labelled process tracks, and
    the whole-trace time envelope.  Network time is derived by
    subtraction — a remote job's [job.rpc] coordinator span minus the
    worker's merged [job.solve] span — and clamped at zero, since
    clock alignment (estimated from heartbeat offsets, see
    {!page-observability}) is only accurate to about one network
    round trip. *)

type job_row = {
  job : int;
  trace : string option;  (** run / request id the job was tagged with *)
  solve_pid : int;  (** process track the solve span landed on *)
  queue_s : float;  (** submit to dispatch *)
  net_s : float;  (** rpc minus remote solve; [0.] for local solves *)
  solve_s : float;
  cached : bool;
  start_s : float;  (** earliest span start, seconds from trace origin *)
  finish_s : float;  (** latest span end *)
}

type t = {
  jobs : job_row list;  (** sorted by job id *)
  requests : (string * float) list;  (** request id, duration (s) *)
  tracks : (int * string) list;  (** pid, [process_name] label *)
  span_s : float;  (** latest span end minus earliest start *)
  events : int;  (** complete ("X") events folded in *)
}

val of_events : Json.t list -> t

val track_label : t -> int -> string
(** The [process_name] label for a pid, with sensible fallbacks. *)

val totals : t -> float * float * float
(** Summed [(queue_s, net_s, solve_s)] over all jobs. *)

val to_json : t -> Json.t
val render : t -> string

val reconcile : ?tol:float -> t -> wall_s:float -> (unit, string list) result
(** Check the timeline against a manifest's wall clock: the trace
    envelope and every job's finish must fall within [wall_s], and each
    job's accounted time (queue + net + solve) within its own observed
    lifetime — all with relative tolerance [tol] (default [0.25]) plus
    a small absolute slack.  [Error] lists every violated check. *)
