(* A dependency-free HTTP/1.1 telemetry listener.

   One background thread accepts connections on a TCP port or a Unix
   socket and serves three read-only endpoints from process-wide state:

     /metrics          Prometheus text exposition of a Metrics registry
     /healthz          liveness + heartbeat staleness (JSON)
     /events?since=N   the flight recorder's ring as NDJSON

   Without a custom handler, requests are handled serially in the
   accept thread: scrapes are sub-millisecond renders of in-memory
   state, and a serial loop cannot be wedged open by a slow client
   holding a worker hostage (reads are bounded, writes go to a closed
   socket at worst).  The solver domains never block on any of this —
   the listener only ever reads atomics.

   An application handler (the [phylo serve] daemon) changes both
   assumptions: its requests carry bodies (POST, bounded by
   [max_body_bytes]) and take real time to answer, so with a handler
   installed each connection is served on its own thread — the builtin
   endpoints stay responsive while solves run — and [stop] joins those
   threads, draining in-flight requests before returning. *)

type target = Tcp of string * int | Unix_sock of string

let target_of_string s =
  (* "host:port", ":port", "http://host:port[/]", a bare port, or a
     filesystem path to a Unix socket. *)
  let strip_prefix ~prefix s =
    if String.length s >= String.length prefix
       && String.sub s 0 (String.length prefix) = prefix
    then Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
    else None
  in
  let s =
    match strip_prefix ~prefix:"http://" s with Some r -> r | None -> s
  in
  let s =
    match String.index_opt s '/' with
    | Some i when i > 0 -> String.sub s 0 i
    | _ -> s
  in
  if String.length s > 0 && (s.[0] = '/' || s.[0] = '.') then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        let host = if host = "" then "127.0.0.1" else host in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
        | Some _ | None -> Error (Printf.sprintf "bad port in %S" s))
    | None -> (
        match int_of_string_opt s with
        | Some p when p > 0 && p < 65536 -> Ok (Tcp ("127.0.0.1", p))
        | Some _ | None ->
            Error
              (Printf.sprintf
                 "cannot parse %S (want HOST:PORT, a port, or a socket path)"
                 s))

let src = Logs.Src.create "obs.serve" ~doc:"HTTP telemetry listener"

module Log = (val Logs.src_log src : Logs.LOG)

type handler =
  request_id:string ->
  meth:string ->
  path:string ->
  query:(string * string) list ->
  body:string ->
  (int * string * string) option

type t = {
  fd : Unix.file_descr;
  thread : Thread.t;
  stopping : bool Atomic.t;
  bound : target;  (* with the real port after binding port 0 *)
  conns : (int, Thread.t) Hashtbl.t;  (* in-flight handler connections *)
  conns_lock : Mutex.t;
}

let port t = match t.bound with Tcp (_, p) -> Some p | Unix_sock _ -> None

let addr_string t =
  match t.bound with
  | Tcp (host, p) -> Printf.sprintf "http://%s:%d" host p
  | Unix_sock path -> path

(* --- request plumbing --- *)

let max_header_bytes = 8192
let max_body_bytes = 8 * 1024 * 1024

(* Offset just past the "\r\n\r\n" ending the header block, if read. *)
let header_end s =
  let rec find i =
    if i + 3 >= String.length s then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i + 4)
    else find (i + 1)
  in
  find 0

(* One header's value, scanning header lines case-insensitively. *)
let header_value name headers =
  String.split_on_char '\n' headers
  |> List.find_map (fun line ->
         match String.index_opt line ':' with
         | None -> None
         | Some i ->
             if String.lowercase_ascii (String.sub line 0 i) = name then
               Some
                 (String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)))
             else None)

(* The declared Content-Length; [None] when the header is absent. *)
let declared_length headers =
  Option.bind (header_value "content-length" headers) int_of_string_opt

let content_length headers = Option.value ~default:0 (declared_length headers)

let read_request fd =
  (* Read the header block (bounded by [max_header_bytes]), then exactly
     the declared body — itself clamped to [max_body_bytes], so an
     over-declared length yields a truncated body the handler rejects
     rather than an unbounded buffer. *)
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 2048 in
  let read_more () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> false
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
  in
  let rec headers () =
    match header_end (Buffer.contents buf) with
    | Some e -> Some e
    | None ->
        if Buffer.length buf > max_header_bytes then None
        else if read_more () then headers ()
        else None
  in
  match headers () with
  | None -> Buffer.contents buf
  | Some hdr_end ->
      let declared =
        content_length (String.sub (Buffer.contents buf) 0 hdr_end)
      in
      let want = hdr_end + Int.min (Int.max declared 0) max_body_bytes in
      let rec body () =
        if Buffer.length buf >= want then ()
        else if read_more () then body ()
        else ()
      in
      body ();
      Buffer.contents buf

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

let respond ?(headers = []) fd ~status ~content_type body =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
        %sConnection: close\r\n\r\n%s"
       status (status_text status) content_type (String.length body) extra body)

(* Split "/events?since=12" into the path and its query pairs. *)
let parse_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let query = String.sub target (i + 1) (String.length target - i - 1) in
      let pairs =
        String.split_on_char '&' query
        |> List.filter_map (fun kv ->
               match String.index_opt kv '=' with
               | Some j ->
                   Some
                     ( String.sub kv 0 j,
                       String.sub kv (j + 1) (String.length kv - j - 1) )
               | None -> if kv = "" then None else Some (kv, ""))
      in
      (path, pairs)

(* --- endpoints --- *)

let healthz ~origin ~stale_after_s ~recorder () =
  let staleness = Option.bind recorder Recorder.heartbeat_staleness_s in
  let stale = match staleness with Some s -> s > stale_after_s | None -> false in
  let body =
    Json.to_string
      (Json.Obj
         [
           ("status", Json.String (if stale then "stale" else "ok"));
           ("uptime_s", Json.Float (Clock.ns_to_s (Int64.sub (Clock.now_ns ()) origin)));
           ( "heartbeat_staleness_s",
             match staleness with
             | Some s -> Json.Float s
             | None -> Json.Null );
           ( "last_seq",
             match recorder with
             | Some r -> Json.Int (Recorder.last_seq r)
             | None -> Json.Null );
           ( "dropped",
             match recorder with
             | Some r -> Json.Int (Recorder.dropped r)
             | None -> Json.Null );
         ])
    ^ "\n"
  in
  ((if stale then 503 else 200), "application/json", body)

(* Every request gets a request id: the client's [X-Request-Id] when it
   sent a sane one, else a minted [req-<pid>-<seq>].  The id rides the
   response header, the access log, and (via the handler) any trace
   context the application threads through its work. *)
let req_seq = Atomic.make 0

let sane_request_id s =
  let n = String.length s in
  n > 0 && n <= 128
  && String.for_all
       (fun ch ->
         (ch >= 'a' && ch <= 'z')
         || (ch >= 'A' && ch <= 'Z')
         || (ch >= '0' && ch <= '9')
         || ch = '-' || ch = '_' || ch = '.')
       s

let mint_request_id headers =
  match header_value "x-request-id" headers with
  | Some rid when sane_request_id rid -> rid
  | Some _ | None ->
      Printf.sprintf "req-%d-%d" (Unix.getpid ())
        (Atomic.fetch_and_add req_seq 1)

let handle ~registry ~recorder ~origin ~stale_after_s ~handler fd =
  let req = read_request fd in
  let first_line =
    match String.index_opt req '\r' with
    | Some i -> String.sub req 0 i
    | None -> req
  in
  let req_headers =
    match header_end req with Some at -> String.sub req 0 at | None -> req
  in
  let rid = mint_request_id req_headers in
  let rid_header = ("X-Request-Id", rid) in
  match String.split_on_char ' ' first_line with
  | [ meth; target; _version ] ->
      let path, query = parse_target target in
      let req_body =
        match header_end req with
        | Some at -> String.sub req at (String.length req - at)
        | None -> ""
      in
      let status, ctype, body =
        match declared_length req_headers with
        | Some n when n > max_body_bytes ->
            (* The body was clamped at [max_body_bytes] during the read,
               so the connection is already drained as far as we will
               go; refuse rather than hand a handler a truncated body. *)
            ( 413,
              "text/plain",
              Printf.sprintf "body exceeds %d bytes\n" max_body_bytes )
        | _ -> (
            let handled =
              match handler with
              | None -> None
              | Some h -> (
                  try h ~request_id:rid ~meth ~path ~query ~body:req_body
                  with _ -> Some (500, "text/plain", "internal error\n"))
            in
            let builtin () =
              if meth <> "GET" && meth <> "HEAD" then
                (405, "text/plain", "method not allowed\n")
              else
                match path with
                | "/metrics" ->
                    (* Refresh this process's own GC/RSS gauges so every
                       scrape sees current memory pressure. *)
                    Procstat.set_gauges ~registry ~prefix:"proc"
                      (Procstat.sample ());
                    ( 200,
                      "text/plain; version=0.0.4; charset=utf-8",
                      Metrics.to_prometheus ~registry () )
                | "/healthz" -> healthz ~origin ~stale_after_s ~recorder ()
                | "/events" -> (
                    match recorder with
                    | None -> (404, "text/plain", "no recorder installed\n")
                    | Some r ->
                        let since =
                          match List.assoc_opt "since" query with
                          | Some v ->
                              Option.value ~default:0 (int_of_string_opt v)
                          | None -> 0
                        in
                        ( 200,
                          "application/x-ndjson",
                          Recorder.to_ndjson (Recorder.snapshot ~since r) ))
                | _ -> (404, "text/plain", "not found\n")
            in
            match handled with Some r -> r | None -> builtin ())
      in
      Log.info (fun m -> m "%s %s -> %d [%s]" meth path status rid);
      respond fd ~headers:[ rid_header ] ~status ~content_type:ctype
        (if meth = "HEAD" then "" else body)
  | _ ->
      Log.info (fun m -> m "malformed request -> 405 [%s]" rid);
      respond fd ~headers:[ rid_header ] ~status:405
        ~content_type:"text/plain" "bad request\n"

(* --- lifecycle --- *)

let accept_loop t ~registry ~recorder ~stale_after_s ~handler origin =
  let serve_one client =
    (try handle ~registry ~recorder ~origin ~stale_after_s ~handler client
     with _ -> ());
    try Unix.close client with Unix.Unix_error _ -> ()
  in
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.accept t.fd with
      | client, _ ->
          if handler = None then serve_one client
          else begin
            (* Handler requests do real work: give each connection its
               own thread so scrapes stay live, and register it so
               [stop] can drain in-flight requests. *)
            Mutex.lock t.conns_lock;
            let th =
              Thread.create
                (fun () ->
                  serve_one client;
                  Mutex.lock t.conns_lock;
                  Hashtbl.remove t.conns (Thread.id (Thread.self ()));
                  Mutex.unlock t.conns_lock)
                ()
            in
            Hashtbl.replace t.conns (Thread.id th) th;
            Mutex.unlock t.conns_lock
          end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
          (* The listening socket was closed under us: stop. *)
          Atomic.set t.stopping true);
      loop ()
    end
  in
  loop ()

let start ?(registry = Metrics.default) ?recorder ?(stale_after_s = 10.)
    ?handler ?(host = "127.0.0.1") ?port ?socket () =
  (* A peer disconnecting mid-response must raise EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fd, bound =
    match (socket, port) with
    | Some _, Some _ ->
        invalid_arg "Obs.Serve.start: give either ~port or ~socket, not both"
    | Some path, None ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        (try Unix.bind fd (Unix.ADDR_UNIX path)
         with e -> (try Unix.close fd with _ -> ()); raise e);
        (fd, Unix_sock path)
    | None, port ->
        let port = Option.value ~default:0 port in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        (try
           Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
         with e -> (try Unix.close fd with _ -> ()); raise e);
        let bound_port =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | Unix.ADDR_UNIX _ -> port
        in
        (fd, Tcp (host, bound_port))
  in
  Unix.listen fd 16;
  let origin = Clock.now_ns () in
  let rec t =
    lazy
      {
        fd;
        stopping = Atomic.make false;
        bound;
        conns = Hashtbl.create 16;
        conns_lock = Mutex.create ();
        thread =
          Thread.create
            (fun () ->
              accept_loop (Lazy.force t) ~registry ~recorder ~stale_after_s
                ~handler origin)
            ();
      }
  in
  Lazy.force t

let stop t =
  Atomic.set t.stopping true;
  (* Closing the listening socket unblocks the accept. *)
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  (try Thread.join t.thread with _ -> ());
  (* Drain in-flight handler connections before reporting stopped. *)
  let in_flight =
    Mutex.lock t.conns_lock;
    let l = Hashtbl.fold (fun _ th acc -> th :: acc) t.conns [] in
    Mutex.unlock t.conns_lock;
    l
  in
  List.iter (fun th -> try Thread.join th with _ -> ()) in_flight;
  match t.bound with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

(* --- a matching minimal client (phylo top, tests, smoke jobs) --- *)

let request_full ?(meth = "GET") ?body target path =
  let fd, addr =
    match target with
    | Tcp (host, port) ->
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } -> raise Not_found
            | h -> h.Unix.h_addr_list.(0))
        in
        (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0, Unix.ADDR_INET (addr, port))
    | Unix_sock p -> (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX p)
  in
  match
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd addr;
        let payload = Option.value ~default:"" body in
        let length_header =
          match body with
          | None -> ""
          | Some b -> Printf.sprintf "Content-Length: %d\r\n" (String.length b)
        in
        write_all fd
          (Printf.sprintf
             "%s %s HTTP/1.1\r\nHost: phylo\r\nConnection: close\r\n%s\r\n%s"
             meth path length_header payload);
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        in
        drain ();
        Buffer.contents buf)
  with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Not_found -> Error "host not found"
  | raw -> (
      (* Split the status line and headers off; hand back code, parsed
         headers (lowercased names) and body. *)
      match header_end raw with
      | None -> Error "malformed HTTP response"
      | Some at -> (
          match String.split_on_char ' ' raw with
          | _ :: code :: _ -> (
              match int_of_string_opt code with
              | Some c ->
                  let headers =
                    String.sub raw 0 at |> String.split_on_char '\n'
                    |> List.filter_map (fun line ->
                           match String.index_opt line ':' with
                           | None -> None
                           | Some i ->
                               Some
                                 ( String.lowercase_ascii
                                     (String.sub line 0 i),
                                   String.trim
                                     (String.sub line (i + 1)
                                        (String.length line - i - 1)) ))
                  in
                  Ok (c, headers, String.sub raw at (String.length raw - at))
              | None -> Error "malformed HTTP status")
          | _ -> Error "malformed HTTP status"))

let request ?meth ?body target path =
  match request_full ?meth ?body target path with
  | Ok (c, _headers, body) -> Ok (c, body)
  | Error _ as e -> e

let get target path = request target path
