type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  (* JSON has no NaN/Infinity literals. *)
  if Float.is_nan x then "null"
  else if x = Float.infinity then "1e999"
  else if x = Float.neg_infinity then "-1e999"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.12g" x

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let output oc j = output_string oc (to_string j)

let write_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output oc j;
      output_char oc '\n')
