type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  (* JSON has no NaN/Infinity literals. *)
  if Float.is_nan x then "null"
  else if x = Float.infinity then "1e999"
  else if x = Float.neg_infinity then "-1e999"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.12g" x

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let output oc j = output_string oc (to_string j)

let write_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output oc j;
      output_char oc '\n')

(* --- parsing --- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    (* Checkpoints only ever escape control characters, but decode any
       BMP code point properly so foreign files parse too. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | Some code ->
                       pos := !pos + 4;
                       add_utf8 buf code
                   | None -> fail "invalid \\u escape")
               | c -> fail (Printf.sprintf "invalid escape \\%C" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numeric = function
      | '0' .. '9' | '+' | '-' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numeric s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_integral =
      not (String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text)
    in
    match (is_integral, int_of_string_opt text, float_of_string_opt text) with
    | true, Some i, _ -> Int i
    | _, _, Some f -> Float f
    | _ -> fail (Printf.sprintf "invalid number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error e -> Error e

(* --- accessors --- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
