(** Machine-readable run manifests.

    A report collects what one run did — named phase timings, arbitrary
    key/value facts, and one entry per worker/block — and serialises to
    a single JSON object.  Pipelines return one per run; the bench
    harness writes one per experiment next to its CSV.  All operations
    are thread-safe. *)

type t

val create : string -> t
(** [create name] — [name] identifies the run (e.g. the experiment id);
    the creation wall-clock time is recorded in the manifest header. *)

val set : t -> string -> Json.t -> unit
(** Set a top-level manifest field (last write per key wins). *)

val add_phase : t -> ?meta:(string * Json.t) list -> string -> float -> unit
(** [add_phase t name elapsed_s] appends a phase timing. *)

val timed_phase : t -> ?meta:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Run the function, record its duration as a phase, {e and} record a
    span of the same name into the ambient trace (see {!Span.install}),
    so manifests and Chrome traces stay aligned. *)

val add_worker : t -> (string * Json.t) list -> unit
(** Append a per-worker (or per-block) entry to the [workers] array. *)

val workers : t -> Json.t list
(** The per-worker entries in insertion order (each a [Json.Obj]) —
    what [to_json] serialises under ["workers"].  The pipeline appends
    one entry per solved block in deterministic block-id order, whatever
    order the inter-block scheduler finished them in. *)

val created_at : t -> float
(** Creation wall-clock time (Unix epoch seconds). *)

val field : t -> string -> Json.t option
(** Look up a top-level field previously {!set}. *)

val fields : t -> (string * Json.t) list
(** All top-level fields in insertion order. *)

val phases : t -> (string * float) list
(** Phase timings in insertion order. *)

val iso8601 : float -> string
(** Render Unix epoch seconds as UTC ISO-8601 ([2026-08-08T12:00:00Z]). *)

val meta_json : float -> Json.t
(** Run metadata for a run created at the given epoch time: ISO-8601
    [started_at], [hostname], [ocaml_version] and — when the working
    directory is a git checkout — [git] (describe output).  Every
    manifest embeds this under ["meta"] so [obs diff] can label what it
    compares; [obs check] ignores the section when gating. *)

val phase_total_s : t -> float

val to_json : t -> Json.t
val write_file : t -> string -> unit

val pp : Format.formatter -> t -> unit
(** Human-readable phase summary. *)
