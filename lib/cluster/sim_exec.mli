(** The cluster-simulator backend of {!Compactphy.Executor}.

    [Clustersim] depends on [Compactphy], not the other way round, so
    the pipeline cannot name {!Dist_bnb} directly; instead this module
    installs a factory through {!Compactphy.Executor.register_sim}.
    Call {!register} once at program start (the CLI does), after which
    [--executor sim] / [Executor.sim] runs every compact-set block on
    the simulated master/slave cluster.

    Semantics: each block solves on a [Platform.cluster workers]
    simulation to its exact optimum (the simulator has no budget hooks
    or frontier), expansions are charged to the run monitor on
    completion, and a checkpointed frontier is re-solved from scratch. *)

val src : Logs.src
(** Log source ["compactphy.simexec"]. *)

val make : Compactphy.Executor.sim_factory
(** The factory itself, exposed for tests. *)

val register : unit -> unit
(** Install {!make} as the {!Compactphy.Executor.sim} backend.
    Idempotent. *)
