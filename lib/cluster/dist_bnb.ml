open Import

let src =
  Logs.Src.create "compactphy.distbnb"
    ~doc:"Master/slave branch-and-bound on the simulated cluster"

module Log = (val Logs.src_log src : Logs.LOG)

type result = {
  cost : float;
  tree : Utree.t;
  makespan : float;
  expansions : int;
  messages : int;
  n_slaves : int;
  utilization : float array;
  report : Obs.Report.t;
  stats : Stats.t;
}

type slave = {
  id : int;
  speed : float;
  mutable lp : Bb_tree.node list;
  mutable ub_view : float;
  mutable busy : bool;
  mutable pending : bool;  (** requested work from the master *)
  mutable stopped : bool;
  mutable busy_time : float;  (** accumulated virtual compute time *)
  mutable n_expanded : int;  (** BBT expansions done by this slave *)
  mutable n_pruned : int;  (** nodes this slave pruned against its UB view *)
}

type master = {
  mutable gp : Bb_tree.node list;
  mutable ub : float;
  mutable best : Utree.t option;
  mutable wanting : int list;  (** slaves parked at an empty global pool *)
}

exception Expansion_budget_exceeded

let run ?config ?(max_expansions = 30_000_000) platform dm =
  let options =
    match config with
    | Some c -> (Run_config.validate ~who:"Dist_bnb.run" c).Run_config.solver
    | None -> Solver.default_options
  in
  let n = Dist_matrix.size dm in
  let p = Platform.n_slaves platform in
  if n <= 2 then begin
    let r = Solver.solve ~options dm in
    {
      cost = r.Solver.cost;
      tree = r.Solver.tree;
      makespan = 0.;
      expansions = r.Solver.stats.Stats.expanded;
      messages = 0;
      n_slaves = p;
      utilization = Array.make p 0.;
      report = Obs.Report.create "dist_bnb";
      stats = r.Solver.stats;
    }
  end
  else
    Obs.Span.with_span "distbnb.run"
      ~args:[ ("n", Obs.Json.Int n); ("slaves", Obs.Json.Int p) ]
    @@ fun () ->
    let report = Obs.Report.create "dist_bnb" in
    Obs.Report.set report "n" (Obs.Json.Int n);
    Obs.Report.set report "n_slaves" (Obs.Json.Int p);
    let problem = Solver.prepare ~options dm in
    let sim = Sim.create () in
    let stats = Stats.create () in
    let expansions = ref 0 in
    let messages = ref 0 in
    let node_msg_time =
      Platform.message_time platform ~bytes:(Platform.node_bytes ~n_species:n)
    in
    let small_msg_time = Platform.message_time platform ~bytes:16 in
    let master =
      {
        gp = [];
        ub = problem.Solver.ub0;
        best = problem.Solver.incumbent0;
        wanting = [];
      }
    in
    let slaves =
      Array.init p (fun id ->
          {
            id;
            speed = platform.Platform.slave_speeds.(id);
            lp = [];
            ub_view = problem.Solver.ub0;
            busy = false;
            pending = false;
            stopped = false;
            busy_time = 0.;
            n_expanded = 0;
            n_pruned = 0;
          })
    in
    let send delay handler =
      incr messages;
      Sim.schedule sim ~delay handler
    in
    (* Nodes currently travelling inside a message: the termination test
       must see them, or a donation arriving after every slave parked
       would be orphaned and the search would silently miss solutions. *)
    let in_flight = ref 0 in
    let send_node delay handler =
      incr in_flight;
      send delay (fun () ->
          decr in_flight;
          handler ())
    in
    let publish cost tree =
      if cost < master.ub then begin
        master.ub <- cost;
        master.best <- Some tree;
        (* Broadcast the improved bound to every slave. *)
        Array.iter
          (fun s ->
            send small_msg_time (fun () ->
                s.ub_view <- Float.min s.ub_view cost))
          slaves
      end
    in
    let rec tick (s : slave) =
      (* One virtual work quantum on slave [s]. *)
      if not s.stopped then begin
        match s.lp with
        | [] ->
            s.busy <- false;
            if not s.pending then begin
              s.pending <- true;
              send small_msg_time (fun () -> master_request s)
            end
        | node :: rest ->
            s.lp <- rest;
            if node.Bb_tree.lb >= s.ub_view then begin
              stats.Stats.pruned <- stats.Stats.pruned + 1;
              s.n_pruned <- s.n_pruned + 1;
              (* Pruning is an order of magnitude cheaper than
                 expanding. *)
              s.busy <- true;
              s.busy_time <- s.busy_time +. (0.1 /. s.speed);
              Sim.schedule sim ~delay:(0.1 /. s.speed) (fun () -> tick s)
            end
            else begin
              incr expansions;
              s.n_expanded <- s.n_expanded + 1;
              if !expansions > max_expansions then
                raise Expansion_budget_exceeded;
              (* The slave's possibly-stale UB view is a conservative
                 bound for the kernel's pre-pruning; per-child checks
                 below re-filter exactly. *)
              let children =
                Solver.expand ~ub:s.ub_view problem node stats
              in
              List.iter
                (fun (c : Bb_tree.node) ->
                  if Bb_tree.is_complete problem.Solver.pm c then begin
                    if c.cost < s.ub_view then begin
                      s.ub_view <- c.cost;
                      send small_msg_time (fun () -> publish c.cost c.tree)
                    end
                  end
                  else if c.lb < s.ub_view then s.lp <- c :: s.lp
                  else begin
                    stats.Stats.pruned <- stats.Stats.pruned + 1;
                    s.n_pruned <- s.n_pruned + 1
                  end)
                (List.rev children);
              (* Two-level load balancing: feed the global pool whenever
                 it is dry and someone is waiting for work. *)
              (match (master.gp, master.wanting, List.rev s.lp) with
              | [], _ :: _, worst :: _ when List.length s.lp > 1 ->
                  s.lp <- List.rev (List.tl (List.rev s.lp));
                  send_node node_msg_time (fun () -> master_donate worst)
              | _ -> ());
              s.busy <- true;
              s.busy_time <- s.busy_time +. (1. /. s.speed);
              Sim.schedule sim ~delay:(1. /. s.speed) (fun () -> tick s)
            end
      end
    and master_request (s : slave) =
      match master.gp with
      | node :: rest ->
          master.gp <- rest;
          send_node node_msg_time (fun () -> deliver s node)
      | [] ->
          master.wanting <- s.id :: master.wanting;
          try_steal_for_waiters ()
    and master_donate node =
      master.gp <- master.gp @ [ node ];
      serve_waiters ()
    and serve_waiters () =
      match (master.wanting, master.gp) with
      | w :: ws, node :: rest ->
          master.wanting <- ws;
          master.gp <- rest;
          send_node node_msg_time (fun () -> deliver slaves.(w) node);
          serve_waiters ()
      | _ -> ()
    and try_steal_for_waiters () =
      (* The master polls the most loaded slave (paper: "it will poll
         branching data from the heavily loaded computing nodes").
         Reading the slave's pool directly is a simulation shortcut; the
         round trip still pays two message times. *)
      let victim =
        Array.fold_left
          (fun acc s ->
            match acc with
            | Some v when List.length v.lp >= List.length s.lp -> acc
            | _ -> if List.length s.lp > 1 then Some s else acc)
          None slaves
      in
      match victim with
      | Some v -> (
          match List.rev v.lp with
          | worst :: _ ->
              v.lp <- List.rev (List.tl (List.rev v.lp));
              send_node (small_msg_time +. node_msg_time) (fun () ->
                  master_donate worst)
          | [] -> ())
      | None ->
          (* No stealable work.  If nobody can produce any more, the
             search is over: release every parked slave. *)
          let someone_active =
            !in_flight > 0 || Array.exists (fun s -> s.busy || s.lp <> []) slaves
          in
          if not someone_active then begin
            Array.iter (fun s -> s.stopped <- true) slaves;
            master.wanting <- []
          end
    and deliver (s : slave) node =
      s.pending <- false;
      if not s.stopped then begin
        s.lp <- node :: s.lp;
        if not s.busy then tick s
      end
    in
    (* Master seeding phase (paper Steps 1-5): expand breadth-first until
       the frontier reaches 2p nodes, then scatter it cyclically. *)
    let target = 2 * p in
    let rec widen frontier =
      let expandable, complete =
        List.partition
          (fun (nd : Bb_tree.node) ->
            not (Bb_tree.is_complete problem.Solver.pm nd))
          frontier
      in
      List.iter
        (fun (nd : Bb_tree.node) ->
          if nd.Bb_tree.cost < master.ub then begin
            master.ub <- nd.Bb_tree.cost;
            master.best <- Some nd.Bb_tree.tree
          end)
        complete;
      match expandable with
      | [] -> []
      | _ when List.length expandable >= target -> expandable
      | nd :: rest ->
          incr expansions;
          (* No [~ub] here: the seeding frontier must reach the slaves
             even when the incumbent could already prune it, so the
             simulated workload (and its makespan) matches the paper's
             scatter phase. *)
          widen (rest @ Solver.expand problem nd stats)
    in
    let seeds, seed_wall_s =
      Obs.Clock.time (fun () -> widen [ Bb_tree.root problem.Solver.pm ])
    in
    Obs.Report.add_phase report "seed" seed_wall_s
      ~meta:[ ("frontier", Obs.Json.Int (List.length seeds)) ];
    Log.debug (fun m ->
        m "seeded %d slaves with %d nodes (initial UB %g)" p
          (List.length seeds) problem.Solver.ub0);
    let seed_time =
      float_of_int !expansions /. platform.Platform.master_speed
    in
    (* Scatter is pipelined: the master's link serialises the
       transmissions but their latencies overlap, so the i-th node
       arrives after i transmission times plus one latency. *)
    let transmission =
      float_of_int (Platform.node_bytes ~n_species:n)
      /. platform.Platform.bandwidth
    in
    List.iteri
      (fun i node ->
        let s = slaves.(i mod p) in
        send_node
          (platform.Platform.startup +. seed_time +. platform.Platform.latency
          +. (transmission *. float_of_int (i + 1)))
          (fun () -> deliver s node))
      seeds;
    (match seeds with
    | [] ->
        (* Everything was solved during seeding (tiny n). *)
        ()
    | _ -> ());
    let (), sim_wall_s =
      Obs.Clock.time (fun () ->
          match Sim.run sim with
          | () -> ()
          | exception Expansion_budget_exceeded ->
              failwith "Dist_bnb.run: expansion budget exceeded")
    in
    Obs.Report.add_phase report "simulate" sim_wall_s;
    let cost, tree =
      match master.best with
      | Some t -> ((match master.ub with u -> u), Solver.relabel_out problem t)
      | None -> assert false
      (* UPGMM always provides an incumbent. *)
    in
    let makespan = Sim.now sim in
    let utilization =
      Array.map
        (fun s -> if makespan > 0. then s.busy_time /. makespan else 0.)
        slaves
    in
    Log.debug (fun m ->
        m "simulated run done: makespan %.6f vs, %d expansions, %d messages"
          makespan !expansions !messages);
    Array.iter
      (fun s ->
        Obs.Report.add_worker report
          [
            ("slave", Obs.Json.Int s.id);
            ("speed", Obs.Json.Float s.speed);
            ("expanded", Obs.Json.Int s.n_expanded);
            ("pruned", Obs.Json.Int s.n_pruned);
            ("busy_time_vs", Obs.Json.Float s.busy_time);
            ("utilization", Obs.Json.Float utilization.(s.id));
          ])
      slaves;
    Obs.Report.set report "makespan_vs" (Obs.Json.Float makespan);
    Obs.Report.set report "expansions" (Obs.Json.Int !expansions);
    Obs.Report.set report "messages" (Obs.Json.Int !messages);
    Obs.Report.set report "stats" (Stats.to_json stats);
    {
      cost;
      tree;
      makespan;
      expansions = !expansions;
      messages = !messages;
      n_slaves = p;
      utilization;
      report;
      stats;
    }

let speedup ?config base par dm =
  let b = run ?config base dm and q = run ?config par dm in
  if q.makespan <= 0. then 1. else b.makespan /. q.makespan
