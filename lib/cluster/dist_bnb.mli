open Import

(** The papers' master/slave branch-and-bound, executed on the
    discrete-event simulator.

    This reproduces the 16-node cluster and grid experiments without 16
    physical machines: every BBT expansion takes [1 / speed] virtual
    seconds on its slave, and every pool fetch, work donation and
    upper-bound broadcast pays the platform's message time.  Because a
    slave prunes with the {e last upper bound it has received}, the
    simulation exhibits the real system's behaviour: adding slaves can
    cut the explored space (super-linear speedup) and communication
    latency can waste it (the grid's handicap at equal node counts). *)

type result = {
  cost : float;  (** weight of the best tree found — always the optimum *)
  tree : Utree.t;  (** in original species labels *)
  makespan : float;  (** virtual seconds from start to completion *)
  expansions : int;  (** total BBT expansions over all slaves *)
  messages : int;  (** protocol messages exchanged *)
  n_slaves : int;
  utilization : float array;
      (** per-slave busy fraction of the makespan — the load-balance
          picture behind the papers' global/local pool design *)
  report : Obs.Report.t;
      (** run manifest: seed/simulate wall-clock phases and one entry
          per slave (expansions, prunings, virtual busy time,
          utilization) *)
  stats : Stats.t;
      (** aggregated search counters over all slaves, in the same shape
          a local solve produces — what the executor's sim backend
          merges into pipeline manifests *)
}

val src : Logs.src
(** Log source ["compactphy.distbnb"]. *)

val run :
  ?config:Run_config.t ->
  ?max_expansions:int ->
  Platform.t ->
  Dist_matrix.t ->
  result
(** Simulate one construction.  Solver knobs come from [?config]'s
    [solver] field (validated; the pipeline-only fields are ignored).
    Callers that used the removed legacy [?options] argument should
    pass [~config:(Run_config.with_solver options Run_config.default)].
    [max_expansions] (default 30 million) guards against runaway
    searches.
    @raise Failure if the guard is hit.
    @raise Invalid_argument if the configuration fails
    {!Run_config.validate}. *)

val speedup :
  ?config:Run_config.t ->
  Platform.t ->
  Platform.t ->
  Dist_matrix.t ->
  float
(** [speedup base par dm] = makespan ratio base/par (e.g. 1-slave cluster
    vs 16-slave cluster — the papers' Figure 3/6 metric). *)
