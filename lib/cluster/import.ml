(* Aliases for modules from dependency libraries. *)

module Dist_matrix = Distmat.Dist_matrix
module Utree = Ultra.Utree
module Bb_tree = Bnb.Bb_tree
module Solver = Bnb.Solver
module Stats = Bnb.Stats
module Run_config = Compactphy.Run_config
module Executor = Compactphy.Executor
