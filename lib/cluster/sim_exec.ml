open Import

let src = Logs.Src.create "compactphy.simexec" ~doc:"Simulator executor backend"

module Log = (val Logs.src_log src : Logs.LOG)

(* The simulator always runs a block to its optimum (it has no budget
   hooks and no frontier), so a [solved] is always exact; the monitor is
   charged with the simulated expansions on completion, the same coarse
   accounting the TCP executor uses for remote work. *)
let solve_one ~monitor ~workers (job : Executor.job) =
  match job.Executor.j_resume with
  | Some (`Solved tree) ->
      {
        Executor.s_stats = Stats.create ();
        s_tree = tree;
        s_status = Bnb.Budget.Exact;
        s_lb = Utree.weight tree;
        s_gap = 0.;
        s_optimal = true;
        s_frontier = [];
        s_from_cache = false;
      }
  | None | Some (`Restart _) -> (
      (* The simulator does not run [Executor.solve_job], so it honours
         a job's cache opt-in through the same hook calls the shared
         core makes (the gating lives in Executor). *)
      match Executor.cache_lookup job with
      | Some sv -> sv
      | None ->
          (match job.Executor.j_resume with
          | Some (`Restart _) ->
              Log.info (fun m ->
                  m "sim backend cannot resume a frontier; re-solving block %d"
                    job.Executor.j_id)
          | _ -> ());
          let platform = Platform.cluster (Int.max 1 workers) in
          let config =
            Run_config.with_solver job.Executor.j_options Run_config.default
          in
          let r = Dist_bnb.run ~config platform job.Executor.j_matrix in
          Bnb.Budget.charge monitor r.Dist_bnb.expansions;
          let sv =
            {
              Executor.s_stats = r.Dist_bnb.stats;
              s_tree = r.Dist_bnb.tree;
              s_status = Bnb.Budget.Exact;
              s_lb = r.Dist_bnb.cost;
              s_gap = 0.;
              s_optimal = true;
              s_frontier = [];
              s_from_cache = false;
            }
          in
          Executor.cache_store job sv;
          sv)

let make ~monitor ~workers =
  let t0 = Obs.Clock.counter () in
  {
    Executor.name = "sim";
    capacity = (fun () -> 1);
    submit =
      (fun job ->
        (* Eager, in submission order — the discrete-event simulator is
           single-threaded, so there is nothing to overlap. *)
        let queue_wait_s = Obs.Clock.elapsed_s t0 in
        Obs.Recorder.emit_ambient
          (Obs.Events.Block_start
             { id = job.Executor.j_id; size = job.Executor.j_size });
        let sv, solve_s =
          Obs.Clock.time (fun () -> solve_one ~monitor ~workers job)
        in
        Obs.Recorder.emit_ambient
          (Obs.Events.Block_finish
             {
               id = job.Executor.j_id;
               size = job.Executor.j_size;
               solve_s;
               status = Bnb.Budget.status_to_string sv.Executor.s_status;
             });
        let o =
          {
            Executor.o_job = job.Executor.j_id;
            o_solved = sv;
            o_queue_wait_s = queue_wait_s;
            o_solve_s = solve_s;
          }
        in
        { Executor.await = (fun () -> o) });
    cancel = ignore;
    shutdown = ignore;
  }

let register () = Executor.register_sim make
